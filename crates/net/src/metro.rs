//! Metro-scale fleet engine: spatial cells, SoA tag state, calendar
//! wakeups, batched grants — the 10⁴–10⁶-tag regime.
//!
//! [`run_fleet`](crate::run_fleet) is the full-fidelity engine: every
//! grant drives a real session transport round through chunk FEC and
//! CRC, which is exactly right up to a few hundred tags and two orders
//! of magnitude too slow past that (its per-grant candidate scan is
//! O(tags), and a serial poller's probes advance one 2 ms exchange at
//! a time). This module is the scale tier above it, trading the
//! bit-level transport for a chunk-granular session model (the same
//! abstraction level `witag-net` already owns — see DESIGN.md §4j)
//! while keeping everything that makes the repo's simulations
//! trustworthy:
//!
//! * **Spatial cell decomposition.** Readers and tags live on a metro
//!   grid of [`CELL_SIZE_M`]-wide cells ([`witag_sim::geom`] points).
//!   Cells are assigned WiFi channels in a reuse-`channels` pattern;
//!   co-channel cells closer than [`INTERFERENCE_RANGE_M`] are merged
//!   into one *contention domain* (union-find over the cell grid).
//!   Readers contend CSMA-style only inside their domain, and
//!   non-interfering domains advance completely independently — which
//!   is what makes the engine parallel without a global lock step.
//! * **Struct-of-arrays tag state.** A [`TagStore`]'s parallel `Vec`s
//!   (duty phase, cooldown streak, chunks remaining, airtime, DRR
//!   credit) replace `run_fleet`'s per-tag heap objects — the same SoA
//!   trick the PR-7 PHY kernels used, here so a million tags fit in a
//!   few flat allocations that scan linearly.
//! * **Calendar-queue wakeups.** Cooldown expiries and medium accesses
//!   go through [`witag_sim::CalendarQueue`] (O(1) amortized), so the
//!   scheduler only ever looks at tags that are actually ready — the
//!   O(tags)-per-grant scan is gone.
//! * **Batched grant rounds.** A reader that wins the medium serves up
//!   to [`MetroConfig::batch`] query rounds back to back under one
//!   DIFS/backoff/marker envelope (the A-MPDU amortisation the PR-7
//!   `receive_many` kernels model at the PHY), aborting the batch on
//!   the first dead-air round so sleeping tags cost one probe, not
//!   eight.
//! * **Hierarchical scheduling.** Within a cell the intra-cell policy
//!   is the existing [`SchedulerKind`] vocabulary (`rr`/`fair`/`edf`/
//!   `serial`; `pred` falls back to `fair` — predictive deferral is a
//!   single-medium optimisation that spatial reuse already subsumes).
//!   Across cells that share a medium, an epoch-based airtime-budget
//!   layer reallocates the domain's airtime to cells proportional to
//!   their backlog every [`MetroConfig::epoch`], so a dense cell
//!   cannot starve its co-channel neighbours.
//!
//! Determinism is unchanged from the rest of the repo: a run is a pure
//! function of [`MetroConfig::seed`]; domains fork per-domain RNG
//! streams, trace events buffer per domain and replay in domain order
//! behind `shard` markers, so report and trace bytes are identical at
//! any thread count (pinned by `tests/net_determinism.rs`).

use std::collections::VecDeque;

use witag::tagnet::{CHUNK_PAYLOAD_BITS, MIN_CHANNEL_BITS};
use witag_mac::access::Contention;
use witag_obs::{BufferRecorder, Event, NullRecorder, Recorder};
use witag_phy::airtime::{block_ack_airtime, LegacyRate};
use witag_phy::mcs::Mcs;
use witag_phy::params::timing;
use witag_phy::ppdu::PhyConfig;
use witag_sim::geom::Point2;
use witag_sim::time::{Duration, Instant};
use witag_sim::{par_map, CalendarQueue, Rng};

use crate::fleet::{DutyCycle, NetError, MARKER_AIRTIME};
use crate::scheduler::SchedulerKind;

/// Side of one square metro cell, metres — a warehouse aisle block or
/// a storefront, with its reader(s) at the centre.
pub const CELL_SIZE_M: f64 = 20.0;

/// Beyond this centre-to-centre distance two cells cannot interfere
/// even co-channel (backscatter links are short and readers are
/// down-tilted; 25 m > one diagonal cell pitch, < two cell pitches).
pub const INTERFERENCE_RANGE_M: f64 = 25.0;

/// Consecutive dead (unmodulated) rounds before a link enters
/// cooldown — same inference rule as the full-fidelity engine.
const COOLDOWN_AFTER: u8 = 2;

/// Cooldown growth cap: `exchange << 6` = 64 exchanges.
const COOLDOWN_CAP_EXP: u8 = 6;

/// Per-round chunk failure probability at zero reader distance (chunk
/// CRC rejects: residual noise the FEC did not clean).
const CHUNK_FAIL_BASE: f64 = 0.02;

/// Additional chunk failure probability per metre of tag–reader
/// distance inside the cell.
const CHUNK_FAIL_PER_M: f64 = 0.004;

/// Chunk failure probability for rounds overlapped by a collision
/// (most of the readout prefix is corrupted; some capture survives).
const COLLISION_CHUNK_FAIL: f64 = 0.9;

/// Complete description of one metro-scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroConfig {
    /// Number of grid cells (laid out on a near-square grid).
    pub cells: usize,
    /// Total readers; reader `r` serves cell `r % cells`.
    pub readers: usize,
    /// Total tags; tag `i` lives in cell `i % cells` at a
    /// deterministic pseudo-random position inside it.
    pub tags: usize,
    /// Intra-cell scheduling policy (`pred` falls back to `fair`).
    pub scheduler: SchedulerKind,
    /// Simulated-time budget for the run.
    pub horizon: Duration,
    /// Master seed; every domain forks its own stream from it.
    pub seed: u64,
    /// WiFi channels available for spatial reuse (≥ 1; 3 is the
    /// classic non-overlapping 2.4 GHz set and eliminates co-channel
    /// adjacency on the grid).
    pub channels: usize,
    /// Query rounds served back to back per medium access (≥ 1): one
    /// marker/DIFS envelope amortised over the batch.
    pub batch: u32,
    /// Inter-cell budget reallocation period of the hierarchical
    /// scheduler.
    pub epoch: Duration,
    /// Optional energy-harvesting duty cycle applied to every tag
    /// (`phase` is a base offset; per-tag phases are spread from it).
    pub duty: Option<DutyCycle>,
}

impl MetroConfig {
    /// A deterministic metro inventory: heterogeneous tag classes
    /// (cycling per-query capacities, subframe sizes, message
    /// lengths — the same cycle as
    /// [`FleetConfig::inventory`](crate::FleetConfig::inventory)),
    /// staggered deadlines, reuse-3 channels, batch 8, 1 s epochs.
    pub fn inventory(
        cells: usize,
        readers: usize,
        tags: usize,
        scheduler: SchedulerKind,
        horizon: Duration,
        seed: u64,
    ) -> MetroConfig {
        MetroConfig {
            cells,
            readers,
            tags,
            scheduler,
            horizon,
            seed,
            channels: 3,
            batch: 8,
            epoch: Duration::secs(1),
            duty: None,
        }
    }

    /// Give every tag an energy-harvesting duty cycle, phases spread
    /// deterministically so ON windows interleave within each cell.
    pub fn with_duty_cycle(mut self, period: Duration, on_fraction: f64) -> MetroConfig {
        self.duty = Some(DutyCycle {
            period,
            on_fraction,
            phase: Duration::ZERO,
        });
        self
    }

    /// Number of grid columns/rows (the smallest square that holds
    /// every cell).
    pub fn grid_side(&self) -> usize {
        let mut s = 1usize;
        while s * s < self.cells {
            s += 1;
        }
        s
    }

    /// Centre of cell `c` on the metro grid, metres.
    pub fn cell_center(&self, c: usize) -> Point2 {
        let side = self.grid_side().max(1);
        let x = (c % side) as f64 * CELL_SIZE_M + CELL_SIZE_M / 2.0;
        let y = (c / side) as f64 * CELL_SIZE_M + CELL_SIZE_M / 2.0;
        Point2::new(x, y)
    }

    /// WiFi channel of cell `c`: the `(col + 2·row) mod channels`
    /// reuse pattern, which for 3 channels gives no co-channel
    /// horizontal or vertical adjacency.
    pub fn cell_channel(&self, c: usize) -> usize {
        let side = self.grid_side().max(1);
        (c % side + 2 * (c / side)) % self.channels.max(1)
    }
}

/// Per-cell aggregate of one metro run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Grid cell index.
    pub cell: usize,
    /// Contention domain the cell was merged into.
    pub domain: usize,
    /// WiFi channel the cell operates on.
    pub channel: usize,
    /// Readers serving this cell.
    pub readers: usize,
    /// Tags homed in this cell.
    pub tags: usize,
    /// Tags whose full message was recovered.
    pub delivered: usize,
    /// Uncontested medium accesses won by this cell's readers.
    pub grants: u64,
    /// Colliding accesses this cell's readers were part of.
    pub collisions: u64,
    /// Airtime this cell's readers consumed.
    pub airtime: Duration,
}

/// Aggregate result of one metro run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroReport {
    /// The intra-cell policy that produced this run.
    pub scheduler: SchedulerKind,
    /// Cells in the grid.
    pub cells: usize,
    /// Readers across the metro.
    pub readers: usize,
    /// Tags across the metro.
    pub tags: usize,
    /// Independent contention domains the cells merged into.
    pub domains: usize,
    /// Tags whose full message was recovered.
    pub delivered: usize,
    /// Simulated time consumed (slowest domain, capped at the
    /// horizon).
    pub elapsed: Duration,
    /// Uncontested medium accesses across all domains.
    pub grants: u64,
    /// Colliding accesses across all domains.
    pub collisions: u64,
    /// Dead query rounds burnt probing sleeping tags.
    pub probe_rounds: u64,
    /// Total airtime consumed across all cells (can exceed `elapsed`:
    /// non-interfering cells transmit concurrently — that concurrency
    /// is the point of spatial reuse).
    pub airtime: Duration,
    /// Message bits of delivered tags (goodput numerator).
    pub delivered_bits: u64,
    /// Delivered reads that beat their staggered freshness deadline.
    pub deadline_hits: usize,
    /// Per-cell aggregates, in cell order.
    pub cell_summaries: Vec<CellSummary>,
    /// Delivery latencies in microseconds, sorted ascending.
    latencies_us: Vec<f64>,
}

impl MetroReport {
    /// Aggregate goodput: delivered message bits over elapsed
    /// simulated time (spatial reuse lets this exceed any single
    /// medium's rate).
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered_bits as f64 / secs
        }
    }

    /// Collisions per medium access.
    pub fn collision_rate(&self) -> f64 {
        let accesses = self.grants + self.collisions;
        if accesses == 0 {
            0.0
        } else {
            self.collisions as f64 / accesses as f64
        }
    }

    /// The `p`-th percentile of delivery latencies, microseconds
    /// (`None` when nothing was delivered). Nearest-rank on the
    /// sorted sample.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let n = self.latencies_us.len();
        let rank = ((p / 100.0) * (n as f64 - 1.0)).round().clamp(0.0, n as f64 - 1.0);
        self.latencies_us.get(rank as usize).copied()
    }
}

/// Static layout shared by every domain worker: cell → domain
/// assignment and the per-domain reader/tag membership lists.
struct Topology {
    /// Domain id of each cell.
    cell_domain: Vec<usize>,
    /// Number of contention domains.
    domains: usize,
    /// Global reader ids per cell.
    cell_readers: Vec<Vec<usize>>,
    /// Global cell ids per domain.
    domain_cells: Vec<Vec<usize>>,
}

impl Topology {
    fn build(cfg: &MetroConfig) -> Topology {
        let cells = cfg.cells;
        let side = cfg.grid_side();
        // Union-find over co-channel cells within interference range.
        let mut parent: Vec<usize> = (0..cells).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x { // lint:allow(panic_path) x always a valid cell id by construction
                parent[x] = parent[parent[x]]; // lint:allow(panic_path) parent entries are cell ids
                x = parent[x]; // lint:allow(panic_path) parent entries are cell ids
            }
            x
        }
        for c in 0..cells {
            let (cx, cy) = (c % side, c / side);
            // Only the 2-ring can be within 25 m of a 20 m grid pitch.
            for dy in 0..=2usize {
                for dx in -2i64..=2 {
                    if dx <= 0 && dy == 0 {
                        continue; // visit each unordered pair once
                    }
                    let nx = cx as i64 + dx;
                    let ny = cy + dy;
                    if nx < 0 || nx as usize >= side || ny >= side {
                        continue;
                    }
                    let n = ny * side + nx as usize;
                    if n >= cells {
                        continue;
                    }
                    if cfg.cell_channel(c) != cfg.cell_channel(n) {
                        continue;
                    }
                    if cfg.cell_center(c).distance(cfg.cell_center(n))
                        > INTERFERENCE_RANGE_M
                    {
                        continue;
                    }
                    let (rc, rn) = (find(&mut parent, c), find(&mut parent, n));
                    if rc != rn {
                        parent[rn] = rc; // lint:allow(panic_path) rn is a root returned by find
                    }
                }
            }
        }
        // Compress roots into dense domain ids, in cell order.
        let mut cell_domain = vec![0usize; cells];
        let mut domains = 0usize;
        let mut root_id: Vec<Option<usize>> = vec![None; cells];
        for (c, slot) in cell_domain.iter_mut().enumerate() {
            let r = find(&mut parent, c);
            let id = match root_id[r] { // lint:allow(panic_path) r is a cell id returned by find
                Some(id) => id,
                None => {
                    let id = domains;
                    domains += 1;
                    root_id[r] = Some(id); // lint:allow(panic_path) r is a cell id returned by find
                    id
                }
            };
            *slot = id;
        }
        let mut cell_readers: Vec<Vec<usize>> = vec![Vec::new(); cells];
        for r in 0..cfg.readers {
            cell_readers[r % cells].push(r); // lint:allow(panic_path) r % cells < cells
        }
        let mut domain_cells: Vec<Vec<usize>> = vec![Vec::new(); domains];
        for c in 0..cells {
            domain_cells[cell_domain[c]].push(c); // lint:allow(panic_path) cell_domain holds dense ids < domains
        }
        Topology {
            cell_domain,
            domains,
            cell_readers,
            domain_cells,
        }
    }
}

/// Struct-of-arrays state for one domain's tags, indexed by
/// domain-local tag id. Parallel `Vec`s instead of per-tag objects:
/// the hot loop touches two or three fields per round, and a million
/// tags stay in a handful of flat allocations.
struct TagStore {
    /// Global tag id (reporting only).
    global: Vec<u64>,
    /// Domain-local cell index.
    cell: Vec<u32>,
    /// Duty-cycle phase offset, ns (with the config-global period/ON
    /// fraction; unused when the config has no duty cycle).
    duty_phase_ns: Vec<u64>,
    /// Transport chunks still missing (0 = message complete).
    chunks_left: Vec<u16>,
    /// Total chunks of the message (header included).
    chunks_total: Vec<u16>,
    /// Consecutive dead rounds (cooldown inference).
    streak: Vec<u8>,
    /// One query round's airtime (payload + SIFS + block ACK), ns.
    exchange_ns: Vec<u32>,
    /// Per-round chunk failure probability (link quality from the
    /// tag's in-cell distance to its reader).
    p_fail: Vec<f32>,
    /// Message size in bits (goodput numerator when delivered).
    message_bits: Vec<u32>,
    /// Staggered freshness deadline, ns from start.
    deadline_ns: Vec<u64>,
    /// Query rounds spent on this tag.
    rounds: Vec<u32>,
    /// Airtime consumed by this tag's rounds, ns.
    airtime_ns: Vec<u64>,
    /// Completion time, ns (`u64::MAX` while unfinished).
    finished_ns: Vec<u64>,
    /// Airtime credit for the DRR (`fair`) policy, ns.
    deficit_ns: Vec<u64>,
}

impl TagStore {
    fn len(&self) -> usize {
        self.global.len()
    }

    /// Whether tag `t` can respond at `now` under the config duty
    /// cycle (always awake without one).
    fn awake(&self, duty: Option<&DutyCycle>, t: usize, now: Instant) -> bool {
        match duty {
            None => true,
            Some(d) => {
                let period = d.period.as_nanos().max(1);
                let phase = self.duty_phase_ns.get(t).copied().unwrap_or(0);
                let x = (now.nanos() + phase) % period;
                (x as f64) < d.on_fraction * period as f64
            }
        }
    }
}

/// Build the SoA store for one domain from the deterministic tag
/// classes (same class cycle as `FleetConfig::inventory`, so the two
/// engines describe the same population).
fn build_store(cfg: &MetroConfig, topo: &Topology, domain: usize) -> TagStore {
    let phy = PhyConfig::new(Mcs::ht(4));
    // Exchange airtime per (channel_bits, subframe_bytes) class —
    // 12 classes, precomputed once instead of per tag.
    let mut class_exchange = [[0u32; 3]; 4];
    for (bi, row) in class_exchange.iter_mut().enumerate() {
        for (si, slot) in row.iter_mut().enumerate() {
            let channel_bits = MIN_CHANNEL_BITS + bi * 2;
            let subframe_bytes = 48usize << si;
            let subframes = channel_bits + 2;
            let exch = phy.airtime(subframe_bytes * subframes)
                + timing::SIFS
                + block_ack_airtime(LegacyRate::M24);
            *slot = exch.as_nanos() as u32;
        }
    }
    let period_ns = cfg.duty.map_or(1, |d| d.period.as_nanos().max(1));
    let mut store = TagStore {
        global: Vec::new(),
        cell: Vec::new(),
        duty_phase_ns: Vec::new(),
        chunks_left: Vec::new(),
        chunks_total: Vec::new(),
        streak: Vec::new(),
        exchange_ns: Vec::new(),
        p_fail: Vec::new(),
        message_bits: Vec::new(),
        deadline_ns: Vec::new(),
        rounds: Vec::new(),
        airtime_ns: Vec::new(),
        finished_ns: Vec::new(),
        deficit_ns: Vec::new(),
    };
    for (local_cell, &cell) in topo.domain_cells[domain].iter().enumerate() { // lint:allow(panic_path) domain < topo.domains by caller contract
        // Tag i lives in cell i % cells: walk this cell's members.
        let mut i = cell;
        while i < cfg.tags {
            let msg_len = 12 + (i % 5) * 6;
            let msg_bits = msg_len * 8;
            let chunks = 1 + msg_bits.div_ceil(CHUNK_PAYLOAD_BITS);
            // Deterministic in-cell position from a SplitMix64-style
            // hash of the tag id: distance to the centre reader sets
            // link quality.
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let fx = ((h >> 11) & 0xFFFF) as f64 / 65536.0;
            let fy = ((h >> 33) & 0xFFFF) as f64 / 65536.0;
            let dx = (fx - 0.5) * (CELL_SIZE_M - 2.0);
            let dy = (fy - 0.5) * (CELL_SIZE_M - 2.0);
            let dist = (dx * dx + dy * dy).sqrt();
            store.global.push(i as u64);
            store.cell.push(local_cell as u32);
            store
                .duty_phase_ns
                .push((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % period_ns);
            store.chunks_left.push(chunks as u16);
            store.chunks_total.push(chunks as u16);
            store.streak.push(0);
            store.exchange_ns.push(class_exchange[i % 4][i % 3]); // lint:allow(panic_path) indices taken modulo the array dims
            store.p_fail.push((CHUNK_FAIL_BASE + CHUNK_FAIL_PER_M * dist) as f32);
            store.message_bits.push(msg_bits as u32);
            store.deadline_ns.push(
                cfg.horizon.as_nanos() / cfg.tags.max(1) as u64 * (i as u64 + 1),
            );
            store.rounds.push(0);
            store.airtime_ns.push(0);
            store.finished_ns.push(u64::MAX);
            store.deficit_ns.push(0);
            i += cfg.cells;
        }
    }
    store
}

/// A pending wakeup in a domain's calendar.
enum Wake {
    /// Evaluate medium contention (the medium is or will be free).
    Access,
    /// A cooled-down tag becomes servable again (local tag id).
    Ready(u32),
}

/// Per-cell live state inside a domain simulation.
struct CellState {
    /// Global cell id.
    cell: usize,
    /// Servable local tag ids (policy-ordered ring).
    ring: VecDeque<u32>,
    /// Sorted local tag ids homed here (serial cursor's universe).
    members: Vec<u32>,
    /// Serial policy cursor into `members`.
    serial_cursor: usize,
    /// Tags not yet complete.
    remaining: usize,
    /// Tags delivered.
    delivered: usize,
    /// Airtime budget for the current epoch, ns (may overdraft by
    /// less than one batch).
    budget_ns: i64,
    /// Grants won during the current epoch.
    epoch_grants: u32,
    /// DRR replenish quantum, ns (cheapest batch in the cell).
    quantum_ns: u64,
    /// Readers homed here: (global reader id, persistent contention
    /// state, frozen backoff slots).
    readers: Vec<(usize, Contention, Option<u64>)>,
    /// Totals for the cell summary.
    grants: u64,
    collisions: u64,
    airtime_ns: u64,
}

/// Everything one domain worker returns for merging.
struct DomainOut {
    /// Per-tag results, parallel to the store's local order:
    /// (global id, rounds, airtime ns, finished ns, message bits,
    /// deadline ns).
    tags: Vec<(u64, u32, u64, u64, u32, u64)>,
    cells: Vec<CellSummary>,
    grants: u64,
    collisions: u64,
    probe_rounds: u64,
    elapsed: Duration,
    buf: BufferRecorder,
}

/// Simulate one contention domain over the full horizon.
fn simulate_domain(
    cfg: &MetroConfig,
    topo: &Topology,
    domain: usize,
    tracing: bool,
) -> DomainOut {
    let mut buf = BufferRecorder::new();
    let mut null = NullRecorder;
    let store = &mut build_store(cfg, topo, domain);
    let duty = cfg.duty;
    let duty_ref = duty.as_ref();
    let batch = cfg.batch.max(1);
    let policy = cfg.scheduler;
    let serial = matches!(policy, SchedulerKind::Serial);
    let mut rng = Rng::seed_from_u64(cfg.seed).fork(0x3E70).fork(domain as u64);

    // Per-cell state; local tag ids are grouped by cell in store
    // construction order.
    let n_cells = topo.domain_cells[domain].len(); // lint:allow(panic_path) domain < topo.domains by caller contract
    let mut cells: Vec<CellState> = topo.domain_cells[domain] // lint:allow(panic_path) domain < topo.domains by caller contract
        .iter()
        .map(|&c| CellState {
            cell: c,
            ring: VecDeque::new(),
            members: Vec::new(),
            serial_cursor: 0,
            remaining: 0,
            delivered: 0,
            budget_ns: 0,
            epoch_grants: 0,
            quantum_ns: u64::MAX,
            readers: topo.cell_readers[c] // lint:allow(panic_path) c is a valid cell id from domain_cells
                .iter()
                .map(|&r| (r, Contention::new(), None))
                .collect(),
            grants: 0,
            collisions: 0,
            airtime_ns: 0,
        })
        .collect();
    for t in 0..store.len() {
        let c = store.cell[t] as usize; // lint:allow(panic_path) t < store.len(), all SoA vecs same length
        if let Some(cs) = cells.get_mut(c) {
            cs.ring.push_back(t as u32);
            cs.members.push(t as u32);
            cs.remaining += 1;
            let cost = store.exchange_ns[t] as u64 * batch as u64; // lint:allow(panic_path) t < store.len()
            cs.quantum_ns = cs.quantum_ns.min(cost);
        }
    }

    let epoch_ns = cfg.epoch.as_nanos().max(1_000_000); // ≥ 1 ms
    let end = Instant::ZERO + cfg.horizon;
    let mut epoch_idx: u64 = 0;
    let mut epoch_end = Instant::from_nanos(epoch_ns);
    recompute_budgets(&mut cells, epoch_ns);

    let mut queue: CalendarQueue<Wake> = CalendarQueue::with_width(Duration::millis(1));
    queue.schedule(Instant::ZERO, Wake::Access);
    let mut access_pending = true;
    let mut busy_until = Instant::ZERO;
    let mut access_round: u64 = 0;
    let mut grants = 0u64;
    let mut collisions = 0u64;
    let mut probe_rounds = 0u64;
    let mut elapsed = Duration::ZERO;
    let mut remaining_total = store.len();

    while let Some(ev) = queue.pop() {
        let now = ev.at;
        if now >= end || remaining_total == 0 {
            break;
        }
        match ev.payload {
            Wake::Ready(t) => {
                let t = t as usize;
                if store.finished_ns.get(t).copied().unwrap_or(0) != u64::MAX {
                    continue; // finished while cooling (collision path)
                }
                let c = store.cell.get(t).copied().unwrap_or(0) as usize;
                if let Some(cs) = cells.get_mut(c) {
                    cs.ring.push_back(t as u32);
                }
                if !access_pending {
                    queue.schedule(busy_until.max(now), Wake::Access);
                    access_pending = true;
                }
                continue;
            }
            Wake::Access => access_pending = false,
        }

        // Epoch rollover: close finished epochs, re-divide the
        // domain's airtime among its cells proportional to backlog.
        while now >= epoch_end {
            let rec: &mut dyn Recorder = if tracing { &mut buf } else { &mut null };
            if rec.enabled() {
                for cs in cells.iter() {
                    rec.record(&Event::NetCellEpoch {
                        cell: cs.cell as u32,
                        epoch: epoch_idx as u32,
                        budget_us: (cs.budget_ns.max(0) as u64) / 1_000,
                        grants: cs.epoch_grants,
                        delivered: cs.delivered as u32,
                    });
                }
            }
            for cs in cells.iter_mut() {
                cs.epoch_grants = 0;
            }
            recompute_budgets(&mut cells, epoch_ns);
            epoch_idx += 1;
            epoch_end += Duration::nanos(epoch_ns);
        }

        // Contending readers: every reader of a cell that has
        // servable work and epoch budget left.
        let mut contenders: Vec<(usize, usize)> = Vec::new(); // (cell idx, reader idx)
        let mut budget_blocked = false;
        for (ci, cs) in cells.iter().enumerate() {
            let has_work = if serial {
                cs.remaining > 0
            } else {
                !cs.ring.is_empty()
            };
            if !has_work {
                continue;
            }
            if cs.budget_ns <= 0 && n_cells > 1 {
                budget_blocked = true;
                continue;
            }
            for ri in 0..cs.readers.len() {
                contenders.push((ci, ri));
            }
        }
        if contenders.is_empty() {
            if budget_blocked {
                queue.schedule(epoch_end.max(now), Wake::Access);
                access_pending = true;
            }
            // Otherwise: all remaining work is cooling down; the next
            // Ready event reschedules the access loop.
            continue;
        }

        // DCF: draw/hold per-reader backoff counters, count down
        // together; simultaneous expiry is a collision.
        for &(ci, ri) in &contenders {
            if let Some(cs) = cells.get_mut(ci) {
                if let Some((_, cont, slots)) = cs.readers.get_mut(ri) {
                    if slots.is_none() {
                        *slots = Some(
                            cont.draw_backoff(&mut rng).as_nanos()
                                / timing::SLOT.as_nanos(),
                        );
                    }
                }
            }
        }
        let min_slots = contenders
            .iter()
            .filter_map(|&(ci, ri)| {
                cells.get(ci).and_then(|cs| cs.readers.get(ri)).and_then(|r| r.2)
            })
            .min()
            .unwrap_or(0);
        let t_access = now + timing::DIFS + timing::SLOT * min_slots;
        let mut winners: Vec<(usize, usize)> = Vec::new();
        for &(ci, ri) in &contenders {
            if let Some(cs) = cells.get_mut(ci) {
                if let Some((_, _, slots)) = cs.readers.get_mut(ri) {
                    if *slots == Some(min_slots) {
                        winners.push((ci, ri));
                    }
                    if let Some(b) = slots.as_mut() {
                        *b -= min_slots.min(*b);
                    }
                }
            }
        }
        let collided = winners.len() > 1;

        // Each winner's cell policy picks a tag; winners transmit
        // simultaneously (their batches overlap in the air).
        let mut t_end = t_access;
        let mut served: Vec<(usize, usize, u64)> = Vec::new(); // (cell, tag, spent ns)
        for &(ci, ri) in &winners {
            let Some(pick) = pick_tag(store, &mut cells, ci, policy) else {
                // The cell's last servable tag vanished between the
                // contention snapshot and now (same-access double win);
                // the reader transmits nothing.
                continue;
            };
            let t = pick as usize;
            // Serve up to `batch` rounds back to back: one marker
            // envelope, abort on dead air or completion.
            let exch = store.exchange_ns.get(t).copied().unwrap_or(0) as u64;
            let mut t_round = t_access + MARKER_AIRTIME;
            let mut spent = MARKER_AIRTIME.as_nanos();
            let mut dead = false;
            for _ in 0..batch {
                let awake = store.awake(duty_ref, t, t_round);
                if let Some(r) = store.rounds.get_mut(t) {
                    *r += 1;
                }
                spent += exch;
                t_round += Duration::nanos(exch);
                if !awake {
                    probe_rounds += 1;
                    dead = true;
                    break; // dead air: reader aborts the batch
                }
                let p = store.p_fail.get(t).copied().unwrap_or(0.0) as f64;
                let failed = if collided {
                    rng.chance(COLLISION_CHUNK_FAIL) || rng.chance(p)
                } else {
                    rng.chance(p)
                };
                if !failed {
                    if let Some(left) = store.chunks_left.get_mut(t) {
                        *left = left.saturating_sub(1);
                        if *left == 0 {
                            if let Some(f) = store.finished_ns.get_mut(t) {
                                *f = t_round.nanos();
                            }
                            break;
                        }
                    }
                }
            }
            if let Some(a) = store.airtime_ns.get_mut(t) {
                *a += spent;
            }
            let reader_global = cells
                .get(ci)
                .and_then(|cs| cs.readers.get(ri))
                .map_or(0, |r| r.0);
            let t_busy = t_access + Duration::nanos(spent);
            t_end = t_end.max(t_busy);
            served.push((ci, t, spent));
            // Cooldown inference + requeue.
            let finished = store.finished_ns.get(t).copied().unwrap_or(0) != u64::MAX;
            if finished {
                if let Some(cs) = cells.get_mut(ci) {
                    cs.remaining -= 1;
                    cs.delivered += 1;
                }
                remaining_total -= 1;
                let rec: &mut dyn Recorder = if tracing { &mut buf } else { &mut null };
                if rec.enabled() {
                    rec.record(&Event::NetSessionDone {
                        round: access_round,
                        tag: store.global.get(t).copied().unwrap_or(0) as u32,
                        delivered: true,
                        rounds: store.rounds.get(t).copied().unwrap_or(0),
                        payload_bits: store.chunks_total.get(t).copied().unwrap_or(0)
                            as u32
                            * CHUNK_PAYLOAD_BITS as u32,
                        latency_us: store.finished_ns.get(t).copied().unwrap_or(0)
                            / 1_000,
                    });
                }
            } else if dead {
                let streak = store.streak.get_mut(t).map_or(0, |s| {
                    *s = s.saturating_add(1);
                    *s
                });
                if !serial && streak >= COOLDOWN_AFTER {
                    let exp = streak.min(COOLDOWN_CAP_EXP);
                    let ready = t_busy + Duration::nanos(exch << exp);
                    queue.schedule(ready.max(now), Wake::Ready(t as u32));
                } else {
                    requeue(store, &mut cells, ci, t, policy);
                }
            } else {
                if let Some(s) = store.streak.get_mut(t) {
                    *s = 0;
                }
                requeue(store, &mut cells, ci, t, policy);
            }
            let rec: &mut dyn Recorder = if tracing { &mut buf } else { &mut null };
            if rec.enabled() && !collided {
                rec.record(&Event::NetGrant {
                    round: access_round,
                    client: reader_global as u32,
                    tag: store.global.get(t).copied().unwrap_or(0) as u32,
                    airtime_us: spent / 1_000,
                });
            }
        }

        // Access accounting: contention outcome, budgets, summaries.
        let busy = t_end.saturating_since(t_access);
        if collided {
            collisions += 1;
            let rec: &mut dyn Recorder = if tracing { &mut buf } else { &mut null };
            if rec.enabled() {
                rec.record(&Event::NetCollision {
                    round: access_round,
                    clients: winners.len() as u32,
                    airtime_us: busy.as_nanos() / 1_000,
                });
            }
        } else if !served.is_empty() {
            grants += 1;
        }
        for &(ci, ri) in &winners {
            if let Some(cs) = cells.get_mut(ci) {
                if let Some((_, cont, slots)) = cs.readers.get_mut(ri) {
                    if collided {
                        cont.on_failure();
                    } else {
                        cont.on_success();
                    }
                    *slots = None;
                }
            }
        }
        for &(ci, _, spent) in &served {
            if let Some(cs) = cells.get_mut(ci) {
                cs.budget_ns -= spent as i64;
                cs.airtime_ns += spent;
                cs.epoch_grants += 1;
                if collided {
                    cs.collisions += 1;
                } else {
                    cs.grants += 1;
                }
            }
        }
        access_round += 1;
        elapsed = t_end.min(end).saturating_since(Instant::ZERO);
        busy_until = t_end;
        if remaining_total > 0 {
            queue.schedule(t_end, Wake::Access);
            access_pending = true;
        }
    }

    // Close the in-progress epoch so every traced run documents the
    // budgets it ran under, even when it finishes inside epoch 0.
    if tracing && buf.enabled() {
        for cs in cells.iter() {
            buf.record(&Event::NetCellEpoch {
                cell: cs.cell as u32,
                epoch: epoch_idx as u32,
                budget_us: (cs.budget_ns.max(0) as u64) / 1_000,
                grants: cs.epoch_grants,
                delivered: cs.delivered as u32,
            });
        }
    }

    DomainOut {
        tags: (0..store.len())
            .map(|t| {
                (
                    store.global[t], // lint:allow(panic_path) t < store.len(), all SoA vecs same length
                    store.rounds[t], // lint:allow(panic_path) t < store.len()
                    store.airtime_ns[t], // lint:allow(panic_path) t < store.len()
                    store.finished_ns[t], // lint:allow(panic_path) t < store.len()
                    store.message_bits[t], // lint:allow(panic_path) t < store.len()
                    store.deadline_ns[t], // lint:allow(panic_path) t < store.len()
                )
            })
            .collect(),
        cells: cells
            .iter()
            .map(|cs| CellSummary {
                cell: cs.cell,
                domain,
                channel: cfg.cell_channel(cs.cell),
                readers: cs.readers.len(),
                tags: cs.members.len(),
                delivered: cs.delivered,
                grants: cs.grants,
                collisions: cs.collisions,
                airtime: Duration::nanos(cs.airtime_ns),
            })
            .collect(),
        grants,
        collisions,
        probe_rounds,
        elapsed,
        buf,
    }
}

/// Re-divide one epoch of airtime among a domain's cells proportional
/// to backlog (tags not yet complete). Single-cell domains get the
/// whole epoch — the inter-cell layer only bites where cells actually
/// share a medium.
fn recompute_budgets(cells: &mut [CellState], epoch_ns: u64) {
    let total: u64 = cells.iter().map(|c| c.remaining as u64).sum();
    let n = cells.len() as u64;
    for cs in cells.iter_mut() {
        cs.budget_ns = if n <= 1 || total == 0 {
            epoch_ns as i64
        } else {
            (epoch_ns * cs.remaining as u64 / total) as i64
        };
    }
}

/// Pick the next tag of cell `ci` under `policy`, removing it from the
/// servable structures. `None` when the cell has nothing servable.
fn pick_tag(
    store: &mut TagStore,
    cells: &mut [CellState],
    ci: usize,
    policy: SchedulerKind,
) -> Option<u32> {
    let cs = cells.get_mut(ci)?;
    match policy {
        SchedulerKind::Serial => {
            // Lowest incomplete member, cooldowns ignored — the
            // poll-until-done baseline.
            while cs.serial_cursor < cs.members.len() {
                let t = cs.members.get(cs.serial_cursor).copied()?;
                if store.finished_ns.get(t as usize).copied().unwrap_or(0) == u64::MAX {
                    return Some(t);
                }
                cs.serial_cursor += 1;
            }
            None
        }
        SchedulerKind::Rr => cs.ring.pop_front(),
        SchedulerKind::Edf => {
            // Scan for the nearest (deadline, tag) — O(ring), only on
            // the EDF path.
            let best = cs
                .ring
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| {
                    (
                        store.deadline_ns.get(t as usize).copied().unwrap_or(u64::MAX),
                        t,
                    )
                })
                .map(|(i, _)| i)?;
            cs.ring.swap_remove_back(best)
        }
        SchedulerKind::Fair | SchedulerKind::Pred => {
            // DRR on airtime credit: serve the first ring member whose
            // credit covers one round; a full empty rotation replenishes
            // everyone by the cell quantum. Bounded: exchange costs span
            // ≤ ~8×, so a handful of rotations always qualifies someone.
            let mut rotations = 0u32;
            let mut scanned = 0usize;
            while let Some(t) = cs.ring.pop_front() {
                let need = store.exchange_ns.get(t as usize).copied().unwrap_or(0) as u64;
                let credit = store.deficit_ns.get(t as usize).copied().unwrap_or(0);
                if credit >= need || rotations > 16 {
                    return Some(t);
                }
                cs.ring.push_back(t);
                scanned += 1;
                if scanned >= cs.ring.len() {
                    scanned = 0;
                    rotations += 1;
                    for &u in cs.ring.iter() {
                        if let Some(d) = store.deficit_ns.get_mut(u as usize) {
                            *d = d.saturating_add(cs.quantum_ns);
                        }
                    }
                }
            }
            None
        }
    }
}

/// Return a served, unfinished, non-cooling tag to its cell's
/// servable structures, charging DRR credit for the airtime it burned.
fn requeue(store: &mut TagStore, cells: &mut [CellState], ci: usize, t: usize, policy: SchedulerKind) {
    if matches!(policy, SchedulerKind::Fair | SchedulerKind::Pred) {
        let spent = store.exchange_ns.get(t).copied().unwrap_or(0) as u64;
        if let Some(d) = store.deficit_ns.get_mut(t) {
            *d = d.saturating_sub(spent);
        }
    }
    if !matches!(policy, SchedulerKind::Serial) {
        if let Some(cs) = cells.get_mut(ci) {
            cs.ring.push_back(t as u32);
        }
    }
}

/// Run one metro-scale inventory across up to `threads` workers.
///
/// Contention domains are simulated independently (their mediums
/// cannot interfere) and merged in domain order; when `rec` is
/// attached each domain's buffered trace replays behind a `shard`
/// marker, preceded by one `net.cell_assign` per cell — so the full
/// trace and the report are byte-identical at any thread count.
pub fn run_metro(
    cfg: &MetroConfig,
    threads: usize,
    rec: &mut dyn Recorder,
) -> Result<MetroReport, NetError> {
    if cfg.cells == 0 {
        return Err(NetError::NoCells);
    }
    if cfg.readers == 0 {
        return Err(NetError::NoClients);
    }
    if cfg.tags == 0 {
        return Err(NetError::NoTags);
    }
    let topo = Topology::build(cfg);
    if rec.enabled() {
        for c in 0..cfg.cells {
            let tags_in_cell = if c < cfg.tags {
                (cfg.tags - c - 1) / cfg.cells + 1
            } else {
                0
            };
            rec.record(&Event::NetCellAssign {
                cell: c as u32,
                channel: cfg.cell_channel(c) as u32,
                domain: topo.cell_domain.get(c).copied().unwrap_or(0) as u32,
                readers: topo.cell_readers.get(c).map_or(0, |v| v.len()) as u32,
                tags: tags_in_cell as u32,
            });
        }
    }
    let tracing = rec.enabled();
    let results = par_map(topo.domains, threads, |d| {
        simulate_domain(cfg, &topo, d, tracing)
    });

    let mut delivered = 0usize;
    let mut delivered_bits = 0u64;
    let mut deadline_hits = 0usize;
    let mut grants = 0u64;
    let mut collisions = 0u64;
    let mut probe_rounds = 0u64;
    let mut airtime = Duration::ZERO;
    let mut elapsed = Duration::ZERO;
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut cell_summaries: Vec<CellSummary> = Vec::with_capacity(cfg.cells);
    for (d, out) in results.into_iter().enumerate() {
        if rec.enabled() {
            rec.record(&Event::Shard {
                index: d as u32,
                base_round: 0,
                rounds: (out.grants + out.collisions) as u32,
            });
            out.buf.replay_into(rec);
        }
        grants += out.grants;
        collisions += out.collisions;
        probe_rounds += out.probe_rounds;
        elapsed = elapsed.max(out.elapsed);
        for &(_, _, airtime_ns, finished_ns, message_bits, deadline_ns) in &out.tags {
            airtime += Duration::nanos(airtime_ns);
            if finished_ns != u64::MAX {
                delivered += 1;
                delivered_bits += message_bits as u64;
                latencies_us.push(finished_ns as f64 / 1e3);
                if finished_ns <= deadline_ns {
                    deadline_hits += 1;
                }
            }
        }
        cell_summaries.extend(out.cells);
    }
    cell_summaries.sort_by_key(|c| c.cell);
    latencies_us.sort_by(f64::total_cmp);
    Ok(MetroReport {
        scheduler: cfg.scheduler,
        cells: cfg.cells,
        readers: cfg.readers,
        tags: cfg.tags,
        domains: topo.domains,
        delivered,
        elapsed,
        grants,
        collisions,
        probe_rounds,
        airtime,
        delivered_bits,
        deadline_hits,
        cell_summaries,
        latencies_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(
        cells: usize,
        readers: usize,
        tags: usize,
        kind: SchedulerKind,
    ) -> MetroConfig {
        MetroConfig::inventory(cells, readers, tags, kind, Duration::secs(30), 0xC0FFEE)
    }

    #[test]
    fn clean_metro_delivers_every_tag() {
        let rep = run_metro(&small(4, 4, 64, SchedulerKind::Fair), 1, &mut NullRecorder)
            .expect("valid metro");
        assert_eq!(rep.delivered, 64, "{rep:?}");
        assert_eq!(rep.domains, 4, "reuse-3 on a 2x2 grid fully separates cells");
        assert!(rep.grants > 0);
        assert!(rep.latency_percentile(99.0).is_some());
    }

    #[test]
    fn same_seed_same_report_and_any_thread_count() {
        let cfg = small(9, 9, 200, SchedulerKind::Fair);
        let mut one = BufferRecorder::new();
        let mut four = BufferRecorder::new();
        let a = run_metro(&cfg, 1, &mut one).expect("valid");
        let b = run_metro(&cfg, 4, &mut four).expect("valid");
        assert_eq!(a, b);
        assert_eq!(one.events(), four.events());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small(4, 4, 40, SchedulerKind::Fair);
        let a = run_metro(&cfg, 1, &mut NullRecorder).expect("valid");
        cfg.seed ^= 0xDEAD;
        let b = run_metro(&cfg, 1, &mut NullRecorder).expect("valid");
        assert_ne!(a, b, "seed must steer the simulation");
    }

    #[test]
    fn single_channel_merges_neighbouring_cells_into_domains() {
        let mut cfg = small(4, 4, 16, SchedulerKind::Fair);
        cfg.channels = 1;
        let rep = run_metro(&cfg, 1, &mut NullRecorder).expect("valid");
        assert!(
            rep.domains < rep.cells,
            "co-channel adjacent cells must share a contention domain ({rep:?})"
        );
        assert_eq!(rep.delivered, 16);
    }

    #[test]
    fn multi_reader_single_channel_domain_collides_and_recovers() {
        let mut cfg = small(2, 4, 24, SchedulerKind::Fair);
        cfg.channels = 1; // both cells on one channel, 20 m apart
        let mut buf = BufferRecorder::new();
        let rep = run_metro(&cfg, 1, &mut buf).expect("valid");
        assert!(rep.collisions > 0, "two readers on one medium must collide");
        assert_eq!(rep.delivered, 24, "collisions must be survivable");
        let kinds: Vec<&str> = buf.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"net.cell_assign"));
        assert!(kinds.contains(&"net.cell_epoch"));
        assert!(kinds.contains(&"net.collision"));
        assert!(kinds.contains(&"net.session_done"));
    }

    #[test]
    fn scheduler_beats_serial_polling_on_duty_cycled_metro() {
        let duty = |kind| {
            small(4, 4, 200, kind).with_duty_cycle(Duration::secs(4), 0.08)
        };
        let fair =
            run_metro(&duty(SchedulerKind::Fair), 1, &mut NullRecorder).expect("valid");
        let serial =
            run_metro(&duty(SchedulerKind::Serial), 1, &mut NullRecorder).expect("valid");
        assert!(
            fair.goodput_bps() > 4.0 * serial.goodput_bps(),
            "fair {:.0} bps vs serial {:.0} bps",
            fair.goodput_bps(),
            serial.goodput_bps()
        );
        assert!(serial.probe_rounds > 0, "serial must burn probes on sleepers");
    }

    #[test]
    fn budget_layer_keeps_cochannel_cells_within_epoch_budgets() {
        // Two cells forced onto one medium with very different
        // backlogs: the budget layer must keep the light cell served.
        let mut cfg = small(2, 2, 40, SchedulerKind::Rr);
        cfg.channels = 1;
        let rep = run_metro(&cfg, 1, &mut NullRecorder).expect("valid");
        assert_eq!(rep.delivered, 40);
        for cs in &rep.cell_summaries {
            assert!(cs.delivered == cs.tags, "cell {cs:?} starved");
        }
    }

    #[test]
    fn edf_and_rr_policies_complete() {
        for kind in [SchedulerKind::Edf, SchedulerKind::Rr] {
            let rep = run_metro(&small(4, 4, 48, kind), 1, &mut NullRecorder)
                .expect("valid");
            assert_eq!(rep.delivered, 48, "{kind:?}");
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_metros() {
        let mut cfg = small(1, 1, 1, SchedulerKind::Rr);
        cfg.cells = 0;
        assert_eq!(
            run_metro(&cfg, 1, &mut NullRecorder),
            Err(NetError::NoCells)
        );
        let mut cfg = small(1, 1, 1, SchedulerKind::Rr);
        cfg.readers = 0;
        assert_eq!(
            run_metro(&cfg, 1, &mut NullRecorder),
            Err(NetError::NoClients)
        );
        let mut cfg = small(1, 1, 1, SchedulerKind::Rr);
        cfg.tags = 0;
        assert_eq!(run_metro(&cfg, 1, &mut NullRecorder), Err(NetError::NoTags));
    }

    #[test]
    fn grid_geometry_is_sane() {
        let cfg = small(10, 10, 10, SchedulerKind::Rr);
        assert_eq!(cfg.grid_side(), 4);
        let c0 = cfg.cell_center(0);
        let c1 = cfg.cell_center(1);
        assert!((c0.distance(c1) - CELL_SIZE_M).abs() < 1e-9);
        for c in 0..10 {
            assert!(cfg.cell_channel(c) < 3);
        }
    }
}
