//! # witag-net — fleet scheduling and medium contention for WiTAG
//!
//! The network layer above the single-link session transport: **N
//! querying clients × M tags on one shared WiFi medium**, as a
//! deterministic discrete-event simulation.
//!
//! WiTAG (HotNets'18 §"Supporting multiple tags") sketches how one
//! client addresses many tags with per-tag query A-MPDUs; this crate
//! supplies what the sketch leaves open — who gets the medium
//! ([`witag_mac::dcf`]-style contention with real PHY airtime), which
//! tag each winner queries next (a pluggable [`Scheduler`] with
//! round-robin, airtime-fair DRR, EDF, a traffic-predictive `pred`
//! policy backed by [`TrafficPredictor`], and a serial baseline), and
//! what happens when two clients' queries overlap in the air (the
//! overlapping fraction of each readout is bit-corrupted and judged by
//! the transport's normal chunk CRC, not dropped by fiat). Links run
//! either the selective-repeat ARQ session transport or the rateless
//! fountain transport ([`Transport`]), selected per fleet.
//!
//! Everything is a pure function of the seed: same
//! [`FleetConfig`] → byte-identical `net.*` trace and identical
//! [`FleetReport`] at any thread count (see [`run_replicas`]).
//!
//! Two engines share that contract at different scales:
//!
//! * [`run_fleet`] / [`run_replicas`] — the full-fidelity single-medium
//!   engine: every grant drives a real transport round (chunk FEC,
//!   CRC). Right up to a few hundred tags.
//! * [`run_metro`] ([`metro`]) — the metro-scale engine: spatial cell
//!   decomposition with channel reuse, struct-of-arrays tag state,
//!   calendar-queue wakeups, batched grant rounds and a hierarchical
//!   (inter-cell budget over intra-cell policy) scheduler. Built for
//!   10⁴–10⁶ tags across hundreds of readers.
//!
//! Entry points: [`FleetConfig::inventory`] → [`run_fleet`] /
//! [`run_replicas`], [`MetroConfig::inventory`] → [`run_metro`];
//! `witag-cli net` and the `net_scale` perf-gate section sit directly
//! on top of them. The system-wide map — how this crate composes with
//! the PHY, MAC, transport and observability layers — is in
//! `docs/ARCHITECTURE.md`.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod metro;
pub mod predict;
pub mod scheduler;

pub use fleet::{
    run_fleet, run_replicas, DutyCycle, FleetConfig, FleetReport, NetError, TagOutcome,
    TagProfile, Transport, MARKER_AIRTIME,
};
pub use metro::{
    run_metro, CellSummary, MetroConfig, MetroReport, CELL_SIZE_M, INTERFERENCE_RANGE_M,
};
pub use predict::TrafficPredictor;
pub use scheduler::{
    Candidate, EdfScheduler, FairScheduler, RrScheduler, Scheduler, SchedulerKind,
    SerialScheduler,
};
