//! # witag-net — fleet scheduling and medium contention for WiTAG
//!
//! The network layer above the single-link session transport: **N
//! querying clients × M tags on one shared WiFi medium**, as a
//! deterministic discrete-event simulation.
//!
//! WiTAG (HotNets'18 §"Supporting multiple tags") sketches how one
//! client addresses many tags with per-tag query A-MPDUs; this crate
//! supplies what the sketch leaves open — who gets the medium
//! ([`witag_mac::dcf`]-style contention with real PHY airtime), which
//! tag each winner queries next (a pluggable [`Scheduler`] with
//! round-robin, airtime-fair DRR, EDF, a traffic-predictive `pred`
//! policy backed by [`TrafficPredictor`], and a serial baseline), and
//! what happens when two clients' queries overlap in the air (the
//! overlapping fraction of each readout is bit-corrupted and judged by
//! the transport's normal chunk CRC, not dropped by fiat). Links run
//! either the selective-repeat ARQ session transport or the rateless
//! fountain transport ([`Transport`]), selected per fleet.
//!
//! Everything is a pure function of the seed: same
//! [`FleetConfig`] → byte-identical `net.*` trace and identical
//! [`FleetReport`] at any thread count (see [`run_replicas`]).
//!
//! Entry points: [`FleetConfig::inventory`] → [`run_fleet`] /
//! [`run_replicas`]; `witag-cli net` and the `net_scale` perf-gate
//! section sit directly on top of them.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod predict;
pub mod scheduler;

pub use fleet::{
    run_fleet, run_replicas, DutyCycle, FleetConfig, FleetReport, NetError, TagOutcome,
    TagProfile, Transport, MARKER_AIRTIME,
};
pub use predict::TrafficPredictor;
pub use scheduler::{
    Candidate, EdfScheduler, FairScheduler, RrScheduler, Scheduler, SchedulerKind,
    SerialScheduler,
};
