//! Offline, API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to a crates.io mirror, so this
//! crate provides the slice of proptest's surface the workspace's
//! property tests actually use: the [`proptest!`] macro, `prop_assert*`
//! / [`prop_assume!`], [`strategy::Strategy`] with ranges / [`any`] /
//! [`collection`] / [`prop_oneof!`] / [`strategy::Just`], and
//! `prop::sample::Index`.
//!
//! Differences from the real crate, accepted deliberately:
//!
//! * **no shrinking** — a failing case panics with the generated values
//!   in scope but is not minimised;
//! * **deterministic sampling** — each test's RNG is seeded from the
//!   test's name, so runs are reproducible without regression files
//!   (`*.proptest-regressions` files are ignored);
//! * strategies are sampled independently per case (no recursive /
//!   filtered strategies).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Subset of proptest's `Config` used by the workspace tests.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// xoshiro256** seeded from a test-name hash via SplitMix64 —
    /// self-contained so sampling never depends on external crates.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Deterministic RNG for a named test (FNV-1a of the name).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            // Multiply-shift; bias is irrelevant for test sampling.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of test values (sampling only; no shrinking).
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;
        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Box a strategy for [`Union`] (used by the `prop_oneof!` macro so
    /// type inference can unify the option list).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: any value.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.f64()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for common types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for the full domain of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }
}

pub mod sample {
    //! `prop::sample` — index selection into runtime-sized collections.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A deferred index: generated without knowing the collection size,
    /// resolved against a length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` items (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! `proptest::collection` — container strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specification: an exact length or a half-open/inclusive range.
    pub trait IntoSizeBounds {
        /// `(lo, hi)` half-open bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeBounds for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeBounds for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with elements from `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy for `BTreeSet<S::Value>` (duplicates collapse, so the
    /// produced set may be smaller than the drawn length).
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeBounds) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        BTreeSetStrategy { element, lo, hi }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_case! { __proptest_rng, $body, $($params)* }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ( $rng:ident, $body:block, $(,)? ) => {
        let __flow = (|| -> ::core::ops::ControlFlow<()> {
            $body
            #[allow(unreachable_code)]
            ::core::ops::ControlFlow::Continue(())
        })();
        let _ = __flow;
    };
    ( $rng:ident, $body:block, mut $pname:ident in $strat:expr $(, $($rest:tt)*)? ) => {
        #[allow(unused_mut)]
        let mut $pname = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { $rng, $body, $($($rest)*)? }
    };
    ( $rng:ident, $body:block, $pname:ident in $strat:expr $(, $($rest:tt)*)? ) => {
        let $pname = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { $rng, $body, $($($rest)*)? }
    };
}

/// Assert a condition inside a property test (panics on failure; this
/// subset does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::core::assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::core::assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::core::assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($item)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_reproducible() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in -2.0f64..2.0, z in 0usize..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_sizes_honoured(v in prop::collection::vec(any::<u8>(), 2..5),
                              w in prop::collection::vec(0u8..=1, 6)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 6);
            prop_assert!(w.iter().all(|&b| b <= 1));
        }

        #[test]
        fn oneof_and_index(pick in prop_oneof![Just(1u32), Just(2), Just(3)],
                           sel in any::<prop::sample::Index>()) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(sel.index(10) < 10);
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
