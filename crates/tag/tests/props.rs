//! Property-based tests for the tag device: schedule correctness for
//! arbitrary bit patterns, trigger robustness, oscillator laws.

use proptest::prelude::*;
use witag_channel::TagMode;
use witag_phy::mcs::Mcs;
use witag_phy::ppdu::PhyConfig;
use witag_sim::time::{Duration, Instant};
use witag_tag::device::{BitEncoding, QueryProfile, Tag, TagConfig};
use witag_tag::envelope::{EnergyTrace, EnvelopeDetector};
use witag_tag::oscillator::Oscillator;
use witag_tag::trigger::TriggerSignature;

fn profile() -> QueryProfile {
    QueryProfile {
        signature: TriggerSignature::default_markers(),
        marker_gap: Duration::micros(24),
        preamble: Duration::micros(36),
        subframe: Duration::micros(20),
        n_subframes: 64,
        guard_subframes: 2,
        margin: Duration::micros(4),
    }
}

fn config() -> TagConfig {
    TagConfig {
        oscillator: Oscillator::Crystal { freq_hz: 250e3 },
        temperature_delta: 0.0,
        detector: EnvelopeDetector::default(),
        profile: profile(),
        encoding: BitEncoding::PhaseFlip,
    }
}

fn query_trace() -> (EnergyTrace, Instant) {
    let mut t = EnergyTrace::new();
    let mut now = 100u64;
    for d in [200u64, 100, 200] {
        t.push(
            Instant::from_micros(now),
            Instant::from_micros(now + d),
            -20.0,
        );
        now += d + 16;
    }
    let ppdu_start = Instant::from_micros(now - 16 + 24);
    t.push(ppdu_start, ppdu_start + Duration::micros(36 + 64 * 20), -20.0);
    (t, ppdu_start)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For ANY bit pattern: each data subframe's interior symbols match
    /// the bit, boundary symbols and guards never flip for a 1-neighbour,
    /// and the LTF always sees the reference state.
    #[test]
    fn schedule_encodes_arbitrary_patterns(bits in proptest::collection::vec(0u8..=1, 62)) {
        let mut tag = Tag::new(config());
        tag.push_bits(&bits);
        let (trace, true_start) = query_trace();
        let plan = tag.respond(&trace).expect("trigger");
        prop_assert_eq!(&plan.bits, &bits);
        let phy = PhyConfig::new(Mcs::ht(5));
        let schedule = plan.to_tag_schedule(true_start, &phy, 64 * 5, TagMode::Phase0);
        prop_assert_eq!(schedule.ltf, TagMode::Phase0);
        // Guards clean.
        for s in 0..10 {
            prop_assert_eq!(schedule.data[s], TagMode::Phase0, "guard {}", s);
        }
        for (i, &bit) in bits.iter().enumerate() {
            let base = (2 + i) * 5;
            // Interior symbols carry the bit...
            for s in base + 1..base + 4 {
                let want = if bit == 0 { TagMode::Phase180 } else { TagMode::Phase0 };
                prop_assert_eq!(schedule.data[s], want, "subframe {} symbol {}", i, s);
            }
            // ...boundary symbols never flip when either neighbour is 1.
            let prev = if i == 0 { 1 } else { bits[i - 1] };
            if bit == 1 || prev == 1 {
                prop_assert_eq!(schedule.data[base], TagMode::Phase0, "lead boundary {}", i);
            }
            let next = bits.get(i + 1).copied().unwrap_or(1);
            if bit == 1 || next == 1 {
                prop_assert_eq!(schedule.data[base + 4], TagMode::Phase0, "tail boundary {}", i);
            }
        }
    }

    /// Consuming bits is exact: `bits_per_query` per answered query.
    #[test]
    fn queue_drains_exactly(extra in 0usize..200) {
        let mut tag = Tag::new(config());
        let total = 62 + extra;
        tag.push_bits(&vec![0u8; total]);
        let (trace, _) = query_trace();
        let _ = tag.respond(&trace).expect("trigger");
        prop_assert_eq!(tag.pending_bits(), extra);
    }

    /// Foreign traffic with arbitrary burst lengths != the signature must
    /// not trigger (no marker triple within tolerance).
    #[test]
    fn no_false_triggers_on_random_bursts(
        durations in proptest::collection::vec(5u64..2000, 3..12),
    ) {
        // Exclude sequences that genuinely contain the signature.
        let sig = [200u64, 100, 200];
        let contains = durations.windows(3).any(|w| {
            w.iter().zip(sig.iter()).all(|(&d, &s)| d.abs_diff(s) <= 4)
        });
        prop_assume!(!contains);
        let mut trace = EnergyTrace::new();
        let mut now = 50u64;
        for &d in &durations {
            trace.push(Instant::from_micros(now), Instant::from_micros(now + d), -20.0);
            now += d + 20;
        }
        let mut tag = Tag::new(config());
        tag.push_bits(&[0; 62]);
        prop_assert!(tag.respond(&trace).is_none());
    }

    /// Oscillator power law: strictly increasing in frequency for both
    /// families; crystals cross the 1 mW line in the MHz range.
    #[test]
    fn oscillator_power_monotone(f1 in 10e3f64..50e6, factor in 1.1f64..10.0) {
        let f2 = f1 * factor;
        // (Bound to locals first: prop_assert!'s message parser treats
        // struct-literal braces as format captures.)
        let (c1, c2) = (
            Oscillator::Crystal { freq_hz: f1 }.power_uw(),
            Oscillator::Crystal { freq_hz: f2 }.power_uw(),
        );
        let (r1, r2) = (
            Oscillator::Ring { freq_hz: f1 }.power_uw(),
            Oscillator::Ring { freq_hz: f2 }.power_uw(),
        );
        prop_assert!(c2 > c1);
        prop_assert!(r2 > r1);
    }

    /// Ring drift is linear in temperature and dwarfs crystal drift.
    #[test]
    fn ring_drift_dominates(dt in 1.0f64..40.0) {
        let ring = Oscillator::Ring { freq_hz: 20e6 };
        let xtal = Oscillator::Crystal { freq_hz: 20e6 };
        prop_assert!(ring.frequency_error(dt).abs() > 1000.0 * xtal.frequency_error(dt).abs());
        prop_assert!(ring.frequency_error(-dt) < 0.0);
    }
}
