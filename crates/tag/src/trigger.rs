//! Query detection: duration-signature matching.
//!
//! The tag must tell query packets apart from everything else on the air
//! (paper §7, "Query Packet Detection") using only the envelope
//! detector's busy/idle edges and a slow clock. The paper sketches
//! trigger *subframes* with amplitude patterns; with scrambling and
//! coding, per-symbol amplitude patterning does not survive the PHY (the
//! scrambler whitens payload bits by design), so this reproduction
//! implements the same function with the same hardware via **duration
//! coding**: the querier precedes each query A-MPDU with a short sequence
//! of marker frames whose *lengths* form a signature (e.g. 200 µs, 100 µs,
//! 200 µs separated by SIFS). Frame lengths are fully under any
//! standards-compliant sender's control, the tag measures them in clock
//! ticks, and false triggers require foreign traffic to reproduce the
//! whole length pattern within tolerance. DESIGN.md documents this
//! substitution.

use crate::oscillator::Oscillator;
use witag_sim::time::{Duration, Instant};

/// A duration-coded trigger signature.
#[derive(Debug, Clone)]
pub struct TriggerSignature {
    /// Nominal marker burst durations, in order.
    pub bursts: Vec<Duration>,
    /// Match tolerance in clock ticks.
    pub tolerance_ticks: u64,
}

impl TriggerSignature {
    /// The default three-marker signature: 200 µs, 100 µs, 200 µs.
    pub fn default_markers() -> Self {
        TriggerSignature {
            bursts: vec![
                Duration::micros(200),
                Duration::micros(100),
                Duration::micros(200),
            ],
            tolerance_ticks: 1,
        }
    }
}

/// Matches burst-duration sequences against a signature, measuring with a
/// (possibly drifted) tag clock.
#[derive(Debug, Clone)]
pub struct TriggerMatcher {
    signature: TriggerSignature,
    /// Expected burst lengths in ticks (computed with the *nominal* clock —
    /// what the tag was configured with at manufacture).
    expected_ticks: Vec<u64>,
    /// Actual tick period (s), including temperature-induced drift — what
    /// the clock really does in the field.
    actual_tick_s: f64,
}

impl TriggerMatcher {
    /// Build a matcher for a signature, clock model and temperature
    /// offset.
    pub fn new(signature: TriggerSignature, osc: Oscillator, delta_t_celsius: f64) -> Self {
        let nominal_tick = osc.period_s();
        let expected_ticks = signature
            .bursts
            .iter()
            .map(|d| (d.as_secs_f64() / nominal_tick).round() as u64)
            .collect();
        let actual_tick_s = 1.0 / osc.effective_hz(delta_t_celsius);
        TriggerMatcher {
            signature,
            expected_ticks,
            actual_tick_s,
        }
    }

    /// Apply an extra fractional frequency error on top of the
    /// temperature model (fault injection: drift/jitter bursts). A
    /// positive `frac` means the clock runs fast, so each real tick is
    /// shorter. Idempotence is the caller's concern: rebuild the
    /// matcher before applying a new error.
    pub fn apply_frequency_error(&mut self, frac: f64) {
        self.actual_tick_s /= 1.0 + frac;
    }

    /// Measure a duration in (drifted) clock ticks.
    pub fn measure_ticks(&self, d: Duration) -> u64 {
        (d.as_secs_f64() / self.actual_tick_s).round() as u64
    }

    /// Scan a burst list (from
    /// [`EnvelopeDetector::burst_durations`](crate::envelope::EnvelopeDetector::burst_durations)) for
    /// the signature. Returns the index of the **last** marker burst of
    /// the first match.
    pub fn find(&self, bursts: &[(Instant, Duration)]) -> Option<usize> {
        let n = self.expected_ticks.len();
        if bursts.len() < n {
            return None;
        }
        'outer: for start in 0..=bursts.len() - n {
            for (i, &expect) in self.expected_ticks.iter().enumerate() {
                let measured = self.measure_ticks(bursts[start + i].1);
                if measured.abs_diff(expect) > self.signature.tolerance_ticks {
                    continue 'outer;
                }
            }
            return Some(start + n - 1);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{EnergyTrace, EnvelopeDetector};

    fn us(n: u64) -> Instant {
        Instant::from_micros(n)
    }

    fn marker_trace(durations: &[u64], gap_us: u64) -> EnergyTrace {
        let mut t = EnergyTrace::new();
        let mut now = 50u64;
        for &d in durations {
            t.push(us(now), us(now + d), -20.0);
            now += d + gap_us;
        }
        t
    }

    fn matcher(delta_t: f64) -> TriggerMatcher {
        TriggerMatcher::new(
            TriggerSignature::default_markers(),
            Oscillator::witag_crystal(),
            delta_t,
        )
    }

    #[test]
    fn exact_signature_matches() {
        let trace = marker_trace(&[200, 100, 200], 16);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(matcher(0.0).find(&bursts), Some(2));
    }

    #[test]
    fn signature_after_foreign_traffic_matches() {
        let trace = marker_trace(&[340, 1000, 200, 100, 200], 16);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(matcher(0.0).find(&bursts), Some(4));
    }

    #[test]
    fn wrong_durations_do_not_match() {
        let trace = marker_trace(&[240, 100, 200], 16);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(matcher(0.0).find(&bursts), None);
    }

    #[test]
    fn random_traffic_does_not_false_trigger() {
        // Durations that never form 10/5/10 ticks.
        let trace = marker_trace(&[333, 87, 512, 61, 149, 482], 30);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(matcher(0.0).find(&bursts), None);
    }

    #[test]
    fn crystal_tolerates_temperature() {
        // ±25 °C on a crystal: sub-ppm error, still matches.
        let trace = marker_trace(&[200, 100, 200], 16);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(matcher(25.0).find(&bursts), Some(2));
        assert_eq!(matcher(-25.0).find(&bursts), Some(2));
    }

    #[test]
    fn hot_ring_oscillator_misses_trigger() {
        // A ring-oscillator tag 30 °C off calibration mis-measures the
        // markers (18 % fast) and fails to match — the paper's footnote 4
        // failure mode, reproduced.
        let m = TriggerMatcher::new(
            TriggerSignature {
                bursts: vec![
                    Duration::micros(200),
                    Duration::micros(100),
                    Duration::micros(200),
                ],
                tolerance_ticks: 40, // even a generous tolerance (0.5%) fails
            },
            Oscillator::shifting_ring(),
            30.0,
        );
        let trace = marker_trace(&[200, 100, 200], 16);
        let bursts = EnvelopeDetector::default().burst_durations(&trace);
        assert_eq!(m.find(&bursts), None);
    }

    #[test]
    fn tick_measurement_uses_drifted_clock() {
        let m = TriggerMatcher::new(
            TriggerSignature::default_markers(),
            Oscillator::shifting_ring(),
            10.0, // +6 %
        );
        // 100 µs at 20 MHz nominal = 2000 ticks; at +6 % the clock runs
        // fast and counts ~2120.
        let ticks = m.measure_ticks(Duration::micros(100));
        assert!((2110..=2130).contains(&ticks), "got {ticks}");
    }
}
