//! # witag-tag — the backscatter tag device model
//!
//! Everything on the tag's side of the air interface:
//!
//! * [`oscillator`] — crystal vs ring-oscillator clock models with the
//!   paper's §7 power law (P ∝ f²) and temperature-drift behaviour
//!   (600 kHz per 5 °C at 20 MHz for rings, footnote 4),
//! * [`envelope`] — the envelope-detector + comparator front end over a
//!   piecewise-constant energy trace of the medium,
//! * [`trigger`] — duration-coded query detection in clock ticks (the
//!   reproduction's concrete realisation of the paper's §7 trigger
//!   sketch; see DESIGN.md for why amplitude patterning does not survive
//!   the scrambler and what replaces it),
//! * [`device`] — the tag state machine: trigger → phase-aligned tick
//!   counter → per-subframe switch schedule, with clock drift faithfully
//!   smearing the schedule,
//! * [`power`] — the power budget and energy-harvesting feasibility
//!   numbers behind the battery-free claim.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

pub mod device;
pub mod envelope;
pub mod oscillator;
pub mod power;
pub mod trigger;

pub use device::{BitEncoding, PlannedModulation, QueryProfile, Tag, TagConfig};
pub use envelope::{EnergyTrace, EnvelopeDetector};
pub use oscillator::Oscillator;
pub use power::{rf_harvest_uw, EnergyBank, PowerBudget};
pub use trigger::{TriggerMatcher, TriggerSignature};
