//! Tag clock sources: crystal vs ring oscillator.
//!
//! The paper's §7 power argument in executable form:
//!
//! * oscillator power grows with the square of the clock frequency;
//! * MHz-range *precision* (crystal) oscillators burn > 1 mW — fatal for
//!   battery-free operation — which is why HitchHike/FreeRider/MOXcatter
//!   fall back to **ring oscillators** for their ≥ 20 MHz channel-shifting
//!   clocks;
//! * ring oscillators drift strongly with temperature (≈ 600 kHz per 5 °C
//!   at 20 MHz, footnote 4), so those systems only work where temperature
//!   is very stable;
//! * WiTAG needs no frequency shifting, so a **50 kHz crystal** — a few
//!   µW, ±20 ppm over temperature — suffices.

/// A clock source model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Oscillator {
    /// Quartz crystal oscillator: precise (ppm-class) at any temperature,
    /// power ∝ f².
    Crystal {
        /// Nominal frequency in Hz.
        freq_hz: f64,
    },
    /// CMOS ring oscillator: low power even at MHz rates, but frequency
    /// moves ≈ 3 %/5 °C (600 kHz at 20 MHz, paper footnote 4).
    Ring {
        /// Nominal frequency in Hz (at the calibration temperature).
        freq_hz: f64,
    },
}

impl Oscillator {
    /// The paper's WiTAG clock: 50 kHz crystal.
    pub const fn witag_crystal() -> Oscillator {
        Oscillator::Crystal { freq_hz: 50e3 }
    }

    /// The ≥ 20 MHz clock that channel-shifting backscatter needs.
    pub const fn shifting_ring() -> Oscillator {
        Oscillator::Ring { freq_hz: 20e6 }
    }

    /// Nominal frequency (Hz).
    pub fn nominal_hz(&self) -> f64 {
        match *self {
            Oscillator::Crystal { freq_hz } | Oscillator::Ring { freq_hz } => freq_hz,
        }
    }

    /// Nominal tick period in seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.nominal_hz()
    }

    /// Effective frequency at `delta_t` °C away from the calibration
    /// temperature.
    ///
    /// Crystal: ±20 ppm over the industrial range — modelled as
    /// 0.5 ppm/°C. Ring: 0.6 %/°C (600 kHz per 5 °C at 20 MHz ⇒ 3 % per
    /// 5 °C ⇒ 0.6 %/°C), per the paper's footnote 4.
    pub fn effective_hz(&self, delta_t_celsius: f64) -> f64 {
        match *self {
            Oscillator::Crystal { freq_hz } => freq_hz * (1.0 + 0.5e-6 * delta_t_celsius),
            Oscillator::Ring { freq_hz } => freq_hz * (1.0 + 6.0e-3 * delta_t_celsius),
        }
    }

    /// Fractional frequency error at a temperature offset.
    pub fn frequency_error(&self, delta_t_celsius: f64) -> f64 {
        self.effective_hz(delta_t_celsius) / self.nominal_hz() - 1.0
    }

    /// Active power draw in microwatts.
    ///
    /// Calibrated to the paper's anchor points: a precision (crystal)
    /// oscillator at 20 MHz burns > 1 mW; a 50 kHz crystal a few µW; ring
    /// oscillators run on tens of µW even at 20 MHz.
    pub fn power_uw(&self) -> f64 {
        match *self {
            // P = k·f² with k chosen so 20 MHz -> 1.28 mW, 50 kHz -> 3.2 µW
            // (both "a few µW" and "> 1 mW" anchors satisfied; the f²
            // scaling is the paper's stated law plus a 3 µW floor for the
            // sustaining amplifier).
            Oscillator::Crystal { freq_hz } => 3.0 + 3.2e-9 * freq_hz * freq_hz / 1e3,
            // Rings are far cheaper per Hz: tens of µW at 20 MHz.
            Oscillator::Ring { freq_hz } => 1.0 + 2.0e-6 * freq_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_anchors() {
        // 50 kHz crystal: "a few microwatts".
        let witag = Oscillator::witag_crystal().power_uw();
        assert!((2.0..10.0).contains(&witag), "50 kHz crystal: {witag} µW");
        // 20 MHz precision oscillator: "> 1 mW".
        let precise20m = Oscillator::Crystal { freq_hz: 20e6 }.power_uw();
        assert!(precise20m > 1000.0, "20 MHz crystal: {precise20m} µW");
        // 20 MHz ring: "tens of microwatts".
        let ring = Oscillator::shifting_ring().power_uw();
        assert!((10.0..100.0).contains(&ring), "20 MHz ring: {ring} µW");
    }

    #[test]
    fn power_scales_quadratically_for_crystals() {
        let f1 = Oscillator::Crystal { freq_hz: 1e6 }.power_uw();
        let f2 = Oscillator::Crystal { freq_hz: 2e6 }.power_uw();
        // Subtract the floor before checking the ratio.
        assert!(((f2 - 3.0) / (f1 - 3.0) - 4.0).abs() < 0.01);
    }

    #[test]
    fn ring_temperature_drift_matches_footnote4() {
        // 5 °C at 20 MHz -> 600 kHz shift.
        let ring = Oscillator::shifting_ring();
        let shift = ring.effective_hz(5.0) - ring.nominal_hz();
        assert!((shift - 600e3).abs() < 1e3, "shift {shift}");
    }

    #[test]
    fn crystal_is_orders_of_magnitude_more_stable() {
        let xtal = Oscillator::witag_crystal();
        let ring = Oscillator::shifting_ring();
        let dt = 10.0;
        assert!(
            ring.frequency_error(dt).abs() > 1e4 * xtal.frequency_error(dt).abs(),
            "ring {} vs crystal {}",
            ring.frequency_error(dt),
            xtal.frequency_error(dt)
        );
    }

    #[test]
    fn period_inverse_of_frequency() {
        let o = Oscillator::witag_crystal();
        assert!((o.period_s() - 20e-6).abs() < 1e-12);
    }
}
