//! Envelope detection: the tag's only "receiver".
//!
//! A backscatter tag cannot afford a radio. What it has (paper §7) is an
//! **envelope detector** — a diode rectifier that tracks the RF energy on
//! the medium — feeding a **comparator** that outputs a binary busy/idle
//! signal. This module models that analogue front end over an
//! [`EnergyTrace`]: a piecewise-constant record of on-air power at the
//! tag's location (PPDU bursts, interframe gaps, foreign traffic).
//!
//! Modelled imperfections: a sensitivity floor (weak signals are invisible
//! to a passive detector), comparator hysteresis (to reject ripple), and
//! an edge-detection latency. The trigger logic (`trigger` module) then
//! works entirely on the busy/idle *edge times* this front end produces —
//! the same information a real comparator gives an ASIC's state machine.

use witag_sim::time::{Duration, Instant};

/// One piecewise-constant segment of on-air power at the tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySegment {
    /// Segment start.
    pub start: Instant,
    /// Segment end (exclusive).
    pub end: Instant,
    /// Received power at the tag in dBm during the segment.
    pub power_dbm: f64,
}

/// A time-ordered energy profile of the medium as seen by the tag.
#[derive(Debug, Clone, Default)]
pub struct EnergyTrace {
    segments: Vec<EnergySegment>,
}

impl EnergyTrace {
    /// Empty trace (silent medium).
    pub fn new() -> Self {
        EnergyTrace::default()
    }

    /// Append a burst of energy. Bursts must be appended in time order
    /// and may not overlap.
    ///
    /// # Panics
    /// Panics on out-of-order or overlapping segments.
    pub fn push(&mut self, start: Instant, end: Instant, power_dbm: f64) {
        assert!(start < end, "empty or negative segment");
        if let Some(last) = self.segments.last() {
            assert!(start >= last.end, "segments must be time-ordered and disjoint");
        }
        self.segments.push(EnergySegment {
            start,
            end,
            power_dbm,
        });
    }

    /// The recorded segments.
    pub fn segments(&self) -> &[EnergySegment] {
        &self.segments
    }
}

/// A busy/idle transition seen by the comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// When the comparator output flipped.
    pub at: Instant,
    /// `true` for idle→busy, `false` for busy→idle.
    pub rising: bool,
}

/// The envelope detector + comparator front end.
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    /// Minimum power the passive detector can see at all (dBm).
    pub sensitivity_dbm: f64,
    /// Comparator hysteresis (dB): a falling signal must drop this far
    /// below the threshold before the output deasserts.
    pub hysteresis_db: f64,
    /// Edge-to-output latency.
    pub latency: Duration,
}

impl Default for EnvelopeDetector {
    fn default() -> Self {
        // Passive envelope detectors with a matched rectifier reach
        // ≈ −56 dBm sensitivity; the tag operates within metres of the
        // transmitter (incident −10…−45 dBm), above this floor even 7 m
        // out (the far edge of the paper's Figure 5 sweep).
        EnvelopeDetector {
            sensitivity_dbm: -56.0,
            hysteresis_db: 3.0,
            latency: Duration::nanos(800),
        }
    }
}

impl EnvelopeDetector {
    /// Run the comparator over a trace, producing busy/idle edges.
    pub fn edges(&self, trace: &EnergyTrace) -> Vec<Edge> {
        let mut edges = Vec::new();
        let mut busy = false;
        let on_threshold = self.sensitivity_dbm;
        let off_threshold = self.sensitivity_dbm - self.hysteresis_db;
        let mut last_end: Option<Instant> = None;
        for seg in trace.segments() {
            // Gap before this segment: signal at -infinity -> deassert.
            if let Some(e) = last_end {
                if busy && e < seg.start {
                    edges.push(Edge {
                        at: e + self.latency,
                        rising: false,
                    });
                    busy = false;
                }
            }
            let level = seg.power_dbm;
            if !busy && level >= on_threshold {
                edges.push(Edge {
                    at: seg.start + self.latency,
                    rising: true,
                });
                busy = true;
            } else if busy && level < off_threshold {
                edges.push(Edge {
                    at: seg.start + self.latency,
                    rising: false,
                });
                busy = false;
            }
            last_end = Some(seg.end);
        }
        if busy {
            if let Some(e) = last_end {
                edges.push(Edge {
                    at: e + self.latency,
                    rising: false,
                });
            }
        }
        edges
    }

    /// Convenience: the durations of busy bursts (rising→falling pairs).
    pub fn burst_durations(&self, trace: &EnergyTrace) -> Vec<(Instant, Duration)> {
        let mut out = Vec::new();
        let mut rise: Option<Instant> = None;
        for e in self.edges(trace) {
            match (e.rising, rise) {
                (true, None) => rise = Some(e.at),
                (false, Some(r)) => {
                    out.push((r, e.at.since(r)));
                    rise = None;
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Instant {
        Instant::from_micros(n)
    }

    #[test]
    fn detects_single_burst() {
        let mut trace = EnergyTrace::new();
        trace.push(us(100), us(300), -20.0);
        let det = EnvelopeDetector::default();
        let bursts = det.burst_durations(&trace);
        assert_eq!(bursts.len(), 1);
        let (start, dur) = bursts[0];
        assert_eq!(start, us(100) + det.latency);
        assert_eq!(dur, Duration::micros(200));
    }

    #[test]
    fn below_sensitivity_invisible() {
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(100), -70.0); // far AP, too weak for the diode
        let det = EnvelopeDetector::default();
        assert!(det.edges(&trace).is_empty());
    }

    #[test]
    fn gap_between_bursts_produces_two() {
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(200), -15.0);
        trace.push(us(216), us(400), -15.0); // SIFS-like gap
        let det = EnvelopeDetector::default();
        let bursts = det.burst_durations(&trace);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].1, Duration::micros(200));
        assert_eq!(bursts[1].1, Duration::micros(184));
    }

    #[test]
    fn hysteresis_bridges_shallow_dips() {
        let det = EnvelopeDetector::default();
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(100), -20.0);
        // Contiguous segment dipping 1 dB below threshold but within
        // hysteresis: comparator must hold.
        trace.push(us(100), us(150), det.sensitivity_dbm - 1.0);
        trace.push(us(150), us(250), -20.0);
        let bursts = det.burst_durations(&trace);
        assert_eq!(bursts.len(), 1, "dip within hysteresis must not split the burst");
        assert_eq!(bursts[0].1, Duration::micros(250));
    }

    #[test]
    fn deep_dip_splits_burst() {
        let det = EnvelopeDetector::default();
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(100), -20.0);
        trace.push(us(100), us(150), det.sensitivity_dbm - 10.0);
        trace.push(us(150), us(250), -20.0);
        assert_eq!(det.burst_durations(&trace).len(), 2);
    }

    #[test]
    fn latency_shifts_edges() {
        let det = EnvelopeDetector {
            latency: Duration::micros(2),
            ..EnvelopeDetector::default()
        };
        let mut trace = EnergyTrace::new();
        trace.push(us(10), us(20), -10.0);
        let edges = det.edges(&trace);
        assert_eq!(edges[0].at, us(12));
        assert_eq!(edges[1].at, us(22));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn overlapping_segments_rejected() {
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(100), -10.0);
        trace.push(us(50), us(150), -10.0);
    }
}
