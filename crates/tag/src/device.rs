//! The WiTAG tag device: trigger → timing recovery → switch schedule.
//!
//! Ties the analogue front end ([`EnvelopeDetector`]), the clock
//! ([`Oscillator`]) and the trigger matcher together into the state
//! machine an ASIC would implement:
//!
//! 1. watch the medium's busy/idle edges for the query signature;
//! 2. phase-align a tick counter to the falling edge of the last marker;
//! 3. stay in the reference switch state through the SIFS, PHY preamble
//!    and guard subframes (so channel estimation sees a stable channel —
//!    paper §5);
//! 4. for each data subframe, hold the reference state to send `1` or the
//!    flipped state to send `0` (paper §4), advancing by whole clock
//!    ticks — which is where oscillator drift becomes symbol
//!    misalignment and, eventually, bit errors.
//!
//! The output is a list of absolute switch instants which
//! [`PlannedModulation::to_tag_schedule`] quantises onto a PPDU's OFDM
//! symbol grid for the channel model.

use crate::envelope::{EnergyTrace, EnvelopeDetector};
use crate::oscillator::Oscillator;
use crate::trigger::{TriggerMatcher, TriggerSignature};
use std::collections::VecDeque;
use witag_channel::{TagMode, TagSchedule};
use witag_phy::ppdu::PhyConfig;
use witag_sim::time::{Duration, Instant};

/// The fixed query format a deployment configures its tags with.
///
/// WiTAG is a co-designed protocol: the querier commits to a subframe
/// duration and count, and tags are provisioned with the same profile
/// (the paper's §7 notes the tag must learn subframe length; fixing it in
/// the deployment profile is the zero-power variant of that).
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Trigger marker signature preceding each query.
    pub signature: TriggerSignature,
    /// Gap between the last marker and the query PPDU (SIFS-like).
    pub marker_gap: Duration,
    /// Query PPDU preamble duration (tag stays in the reference state).
    pub preamble: Duration,
    /// Airtime of one subframe.
    pub subframe: Duration,
    /// Number of subframes in the query A-MPDU.
    pub n_subframes: usize,
    /// Leading subframes the tag never modulates (settling guard;
    /// paper §7's trigger subframes play this role).
    pub guard_subframes: usize,
    /// Boundary margin: the tag flips only the *interior*
    /// `[start + margin, end − margin]` of a subframe's airtime. OFDM
    /// symbols straddling subframe boundaries (the SERVICE-field offset
    /// shifts bit positions within symbols) are shared between
    /// neighbouring subframes; flipping them would corrupt the neighbour
    /// too (inter-bit interference). One clock tick of margin per side
    /// clears both the shared symbol and the trigger phase jitter.
    pub margin: Duration,
}

impl QueryProfile {
    /// Number of data bits one query carries.
    pub fn bits_per_query(&self) -> usize {
        self.n_subframes - self.guard_subframes
    }

    /// Check the tick-alignment co-design constraints for a clock: the
    /// tag counts whole ticks from the last marker's falling edge, so
    /// both the lead-in (`marker_gap + preamble`) and the subframe
    /// duration must be integer multiples of the tick period, or the
    /// schedule would smear across subframe boundaries even with a
    /// perfect clock. The querier owns both knobs: it may defer the PPDU
    /// beyond SIFS (gap) and size MPDUs to the tick grid (subframe).
    pub fn is_tick_aligned(&self, osc: &Oscillator) -> bool {
        let tick_ns = (osc.period_s() * 1e9).round() as u64;
        let lead = self.marker_gap + self.preamble;
        lead.as_nanos().is_multiple_of(tick_ns)
            && self.subframe.as_nanos().is_multiple_of(tick_ns)
            && self.margin.as_nanos().is_multiple_of(tick_ns)
            && self.margin * 2 < self.subframe
    }
}

/// How tag bits map to switch states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitEncoding {
    /// Paper §5.2 (the WiTAG design): always reflecting, flip phase.
    /// Reference (and bit 1) = 0°, bit 0 = 180°. Channel displacement 2a.
    PhaseFlip,
    /// Paper §5.1 (the strawman): open/short keying. Reference (and bit
    /// 1) = open (non-reflective), bit 0 = short. Displacement a.
    OnOffKeying,
}

impl BitEncoding {
    /// Switch state representing the reference / idle / bit-1 condition.
    pub fn reference(self) -> TagMode {
        match self {
            BitEncoding::PhaseFlip => TagMode::Phase0,
            BitEncoding::OnOffKeying => TagMode::OpenCircuit,
        }
    }

    /// Switch state representing bit 0 (corrupt the subframe).
    pub fn zero(self) -> TagMode {
        match self {
            BitEncoding::PhaseFlip => TagMode::Phase180,
            BitEncoding::OnOffKeying => TagMode::ShortCircuit,
        }
    }
}

/// Static tag configuration.
#[derive(Debug, Clone)]
pub struct TagConfig {
    /// Clock source.
    pub oscillator: Oscillator,
    /// Temperature offset from the clock's calibration point (°C).
    pub temperature_delta: f64,
    /// Analogue front end.
    pub detector: EnvelopeDetector,
    /// Deployment query profile.
    pub profile: QueryProfile,
    /// Bit-to-switch-state mapping.
    pub encoding: BitEncoding,
}

impl TagConfig {
    /// The paper's prototype configuration: 50 kHz crystal, phase-flip
    /// encoding, default marker signature.
    pub fn paper_prototype(profile: QueryProfile) -> Self {
        TagConfig {
            oscillator: Oscillator::witag_crystal(),
            temperature_delta: 0.0,
            detector: EnvelopeDetector::default(),
            profile,
            encoding: BitEncoding::PhaseFlip,
        }
    }
}

/// The planned switch activity for one query PPDU.
#[derive(Debug, Clone)]
pub struct PlannedModulation {
    /// Bits the tag committed to this query.
    pub bits: Vec<u8>,
    /// Absolute switch events `(instant, new state)`, time-ordered.
    pub events: Vec<(Instant, TagMode)>,
    /// The tag's estimate of the PPDU start instant.
    pub ppdu_start_estimate: Instant,
}

impl PlannedModulation {
    /// Tag switch state at instant `t` (reference state before the first
    /// event).
    pub fn state_at(&self, t: Instant, reference: TagMode) -> TagMode {
        let mut state = reference;
        for &(at, mode) in &self.events {
            if at <= t {
                state = mode;
            } else {
                break;
            }
        }
        state
    }

    /// Quantise the plan onto a PPDU's OFDM symbol grid: the channel
    /// model needs one [`TagMode`] per DATA symbol (sampled at symbol
    /// midpoints) plus the LTF state.
    pub fn to_tag_schedule(
        &self,
        true_ppdu_start: Instant,
        phy: &PhyConfig,
        n_symbols: usize,
        reference: TagMode,
    ) -> TagSchedule {
        let sym = phy.guard.symbol_duration();
        let ltf_mid = true_ppdu_start + phy.preamble_duration() - sym / 2;
        let ltf = self.state_at(ltf_mid, reference);
        let data = (0..n_symbols)
            .map(|i| {
                let mid = true_ppdu_start + phy.symbol_start(i) + sym / 2;
                self.state_at(mid, reference)
            })
            .collect();
        TagSchedule { ltf, data }
    }
}

/// The tag device.
#[derive(Debug, Clone)]
pub struct Tag {
    cfg: TagConfig,
    matcher: TriggerMatcher,
    queue: VecDeque<u8>,
    /// Extra fractional clock error beyond the temperature model (fault
    /// injection: drift/jitter bursts). 0.0 = nominal hardware.
    clock_fault: f64,
    /// Queries answered (diagnostics).
    pub queries_answered: u64,
}

impl Tag {
    /// Build a tag from its configuration.
    pub fn new(cfg: TagConfig) -> Self {
        let matcher = TriggerMatcher::new(
            cfg.profile.signature.clone(),
            cfg.oscillator,
            cfg.temperature_delta,
        );
        Tag {
            cfg,
            matcher,
            queue: VecDeque::new(),
            clock_fault: 0.0,
            queries_answered: 0,
        }
    }

    /// Inject (or clear, with 0.0) an extra fractional clock-frequency
    /// error on top of the temperature model. Both the trigger matcher
    /// and the modulation schedule see the faulted clock, exactly as a
    /// glitching oscillator would: a large enough error makes the tag
    /// reject triggers outright; a moderate one smears its switch
    /// schedule across subframe boundaries.
    pub fn set_clock_fault(&mut self, frac_error: f64) {
        if frac_error == self.clock_fault {
            return;
        }
        self.clock_fault = frac_error;
        let mut matcher = TriggerMatcher::new(
            self.cfg.profile.signature.clone(),
            self.cfg.oscillator,
            self.cfg.temperature_delta,
        );
        matcher.apply_frequency_error(frac_error);
        self.matcher = matcher;
    }

    /// Queue data bits for transmission.
    pub fn push_bits(&mut self, bits: &[u8]) {
        for &b in bits {
            debug_assert!(b <= 1);
            self.queue.push_back(b);
        }
    }

    /// Queue bytes MSB-first.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            for i in (0..8).rev() {
                self.queue.push_back((byte >> i) & 1);
            }
        }
    }

    /// Bits waiting to be sent.
    pub fn pending_bits(&self) -> usize {
        self.queue.len()
    }

    /// Discard up to `n` queued bits (used by harnesses when a trigger
    /// was missed and the bits were never committed to the air).
    pub fn drop_pending(&mut self, n: usize) {
        for _ in 0..n.min(self.queue.len()) {
            self.queue.pop_front();
        }
    }

    /// Observe the medium and, if a query trigger is present, plan the
    /// modulation for the PPDU that follows it. Consumes up to
    /// `bits_per_query` bits from the queue (missing bits are sent as 1 —
    /// "do nothing", indistinguishable from idle, per the paper's
    /// encoding).
    pub fn respond(&mut self, trace: &EnergyTrace) -> Option<PlannedModulation> {
        let bursts = self.cfg.detector.burst_durations(trace);
        let last_marker = self.matcher.find(&bursts)?;
        // Phase reference: falling edge of the last marker (comparator
        // output), which lags the true RF edge by the detector latency;
        // the tick counter is (asynchronously) restarted on this edge, so
        // every subsequent instant is `reference + k·tick`.
        let (marker_start, marker_dur) = bursts[last_marker]; // lint:allow(panic_path) matcher.find returns an index into the bursts it searched
        let phase_ref = marker_start + marker_dur; // already includes latency

        // Tick-counted delays from the phase reference, in *actual*
        // (drifted) tick units: the counter counts nominal tick targets
        // but each tick really lasts `actual_tick`.
        let nominal_tick = self.cfg.oscillator.period_s();
        let actual_tick = 1.0
            / (self
                .cfg
                .oscillator
                .effective_hz(self.cfg.temperature_delta)
                * (1.0 + self.clock_fault));
        let ticks_of = |d: Duration| (d.as_secs_f64() / nominal_tick).round();
        let elapse = |ticks: f64| Duration::from_secs_f64(ticks * actual_tick);

        let profile = &self.cfg.profile;
        debug_assert!(
            profile.is_tick_aligned(&self.cfg.oscillator),
            "query profile is not tick-aligned for this clock (co-design constraint)"
        );
        let n_data = profile.bits_per_query();
        let mut bits = Vec::with_capacity(n_data);
        for _ in 0..n_data {
            bits.push(self.queue.pop_front().unwrap_or(1));
        }

        let reference = self.cfg.encoding.reference();
        let zero = self.cfg.encoding.zero();
        let mut events = Vec::new();
        // Ticks from the phase reference to the first data subframe: the
        // marker gap + PHY preamble + guard subframes.
        let subframe_ticks = ticks_of(profile.subframe);
        let margin_ticks = ticks_of(profile.margin);
        let lead_ticks = ticks_of(profile.marker_gap + profile.preamble)
            + subframe_ticks * profile.guard_subframes as f64;
        // Interior flips: enter the zero state `margin` after a 1→0
        // boundary, leave it `margin` before a 0→1 boundary, so shared
        // boundary symbols are never corrupted for a neighbouring 1-bit.
        let mut state = reference;
        for (i, &bit) in bits.iter().enumerate() {
            if bit == 0 && state == reference {
                let at =
                    phase_ref + elapse(lead_ticks + subframe_ticks * i as f64 + margin_ticks);
                events.push((at, zero));
                state = zero;
            } else if bit == 1 && state == zero {
                let at =
                    phase_ref + elapse(lead_ticks + subframe_ticks * i as f64 - margin_ticks);
                events.push((at, reference));
                state = reference;
            }
        }
        // Return to reference before the A-MPDU ends.
        if state != reference {
            let at = phase_ref
                + elapse(lead_ticks + subframe_ticks * n_data as f64 - margin_ticks);
            events.push((at, reference));
        }
        // The tag's belief of when the PPDU started (diagnostics): the
        // comparator latency is a calibrated hardware constant.
        let ppdu_start = phase_ref + profile.marker_gap - self.cfg.detector.latency;

        self.queries_answered += 1;
        Some(PlannedModulation {
            bits,
            events,
            ppdu_start_estimate: ppdu_start,
        })
    }

    /// The tag's configuration.
    pub fn config(&self) -> &TagConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witag_phy::mcs::Mcs;

    fn us(n: u64) -> Instant {
        Instant::from_micros(n)
    }

    /// Test clock: 250 kHz crystal (4 µs tick).
    fn clock() -> Oscillator {
        Oscillator::Crystal { freq_hz: 250e3 }
    }

    fn profile() -> QueryProfile {
        QueryProfile {
            signature: TriggerSignature::default_markers(),
            // gap + preamble = 24 + 36 = 60 µs = 15 ticks at 250 kHz: the
            // tick-alignment co-design constraint.
            marker_gap: Duration::micros(24),
            preamble: Duration::micros(36),
            subframe: Duration::micros(20), // 5 ticks
            n_subframes: 64,
            guard_subframes: 2,
            margin: Duration::micros(4), // 1 tick
        }
    }

    fn test_config() -> TagConfig {
        TagConfig {
            oscillator: clock(),
            temperature_delta: 0.0,
            detector: EnvelopeDetector::default(),
            profile: profile(),
            encoding: BitEncoding::PhaseFlip,
        }
    }

    /// Build the medium trace for one query: 3 markers then the PPDU.
    fn query_trace(ppdu_airtime: Duration) -> (EnergyTrace, Instant) {
        let mut t = EnergyTrace::new();
        let mut now = 100u64;
        for d in [200u64, 100, 200] {
            t.push(us(now), us(now + d), -20.0);
            now += d + 16;
        }
        let ppdu_start = us(now - 16 + 24); // last gap is the 24 µs marker gap
        t.push(ppdu_start, ppdu_start + ppdu_airtime, -20.0);
        (t, ppdu_start)
    }

    #[test]
    fn no_trigger_no_response() {
        let mut tag = Tag::new(test_config());
        tag.push_bits(&[0, 1, 0]);
        let mut trace = EnergyTrace::new();
        trace.push(us(0), us(500), -20.0);
        assert!(tag.respond(&trace).is_none());
        assert_eq!(tag.pending_bits(), 3);
    }

    #[test]
    fn trigger_consumes_bits_and_plans_events() {
        let mut tag = Tag::new(test_config());
        let n_data = profile().bits_per_query();
        let bits: Vec<u8> = (0..n_data).map(|i| (i % 2) as u8).collect();
        tag.push_bits(&bits);
        let (trace, _) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).expect("must trigger");
        assert_eq!(plan.bits, bits);
        assert_eq!(tag.pending_bits(), 0);
        assert_eq!(tag.queries_answered, 1);
        // Alternating bits: one switch per subframe boundary + final
        // return to reference.
        assert!(plan.events.len() >= n_data - 1);
        // Events strictly time-ordered.
        assert!(plan.events.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ppdu_start_estimate_accurate_with_crystal() {
        let mut tag = Tag::new(test_config());
        tag.push_bits(&[0; 62]);
        let (trace, true_start) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        let err = plan
            .ppdu_start_estimate
            .saturating_since(true_start)
            .max(true_start.saturating_since(plan.ppdu_start_estimate));
        assert!(
            err < Duration::micros(2),
            "crystal-clock phase error {err} must be tiny"
        );
    }

    #[test]
    fn schedule_reference_during_ltf_and_guards() {
        let mut tag = Tag::new(test_config());
        tag.push_bits(&[0; 62]); // all zeros: flip on every data subframe
        let (trace, true_start) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        let phy = PhyConfig::new(Mcs::ht(5));
        // 64 subframes × 20 µs = 5 symbols each.
        let n_symbols = 64 * 5;
        let schedule = plan.to_tag_schedule(true_start, &phy, n_symbols, TagMode::Phase0);
        assert_eq!(schedule.ltf, TagMode::Phase0, "LTF must see the reference state");
        // Guard subframes (first 2 × 5 symbols) unmodulated, plus the
        // margin symbol at the head of the first data subframe.
        for s in 0..=10 {
            assert_eq!(schedule.data[s], TagMode::Phase0, "guard/margin symbol {s}");
        }
        // Interior of the all-zeros run is flipped (consecutive zeros
        // keep the switch held across boundaries)…
        for s in 11..n_symbols - 1 {
            assert_eq!(schedule.data[s], TagMode::Phase180, "data symbol {s}");
        }
        // …and the trailing margin symbol is back at reference.
        assert_eq!(schedule.data[n_symbols - 1], TagMode::Phase0);
    }

    #[test]
    fn alternating_bits_alternate_subframes() {
        let mut tag = Tag::new(test_config());
        let n_data = 62;
        let bits: Vec<u8> = (0..n_data).map(|i| (i % 2) as u8).collect();
        tag.push_bits(&bits);
        let (trace, true_start) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        let phy = PhyConfig::new(Mcs::ht(5));
        let schedule = plan.to_tag_schedule(true_start, &phy, 64 * 5, TagMode::Phase0);
        // Subframe i (data) occupies symbols (2+i)*5 .. (3+i)*5. With a
        // one-tick (one-symbol) margin, a 0-bit flips only the three
        // interior symbols; boundary symbols stay at reference, and
        // 1-bit subframes are untouched end to end.
        for (i, &bit) in bits.iter().enumerate() {
            let base = (2 + i) * 5;
            if bit == 0 {
                assert_eq!(schedule.data[base], TagMode::Phase0, "subframe {i} lead margin");
                for s in base + 1..base + 4 {
                    assert_eq!(schedule.data[s], TagMode::Phase180, "subframe {i} symbol {s}");
                }
                assert_eq!(schedule.data[base + 4], TagMode::Phase0, "subframe {i} tail margin");
            } else {
                for s in base..base + 5 {
                    assert_eq!(schedule.data[s], TagMode::Phase0, "subframe {i} symbol {s}");
                }
            }
        }
    }

    #[test]
    fn hot_ring_oscillator_smears_subframes() {
        // Same tag logic on a +6 %-fast ring oscillator: by the end of the
        // A-MPDU the schedule is more than a full subframe early.
        let mut cfg = test_config();
        cfg.oscillator = Oscillator::shifting_ring();
        cfg.temperature_delta = 10.0;
        // Loosen the trigger so the drifted clock still matches (we are
        // testing modulation smear, not trigger rejection).
        cfg.profile.signature.tolerance_ticks = 3000;
        let mut tag = Tag::new(cfg);
        let bits: Vec<u8> = (0..62).map(|i| (i % 2) as u8).collect();
        tag.push_bits(&bits);
        let (trace, true_start) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        let phy = PhyConfig::new(Mcs::ht(5));
        let schedule = plan.to_tag_schedule(true_start, &phy, 64 * 5, TagMode::Phase0);
        // Count symbol-level mismatches vs the intended (margin-aware)
        // pattern — a perfect clock scores zero here.
        let mut mismatches = 0;
        for (i, &bit) in bits.iter().enumerate() {
            let base = (2 + i) * 5;
            for s in base..base + 5 {
                let interior = s > base && s < base + 4;
                let want = if bit == 0 && interior {
                    TagMode::Phase180
                } else {
                    TagMode::Phase0
                };
                if schedule.data[s] != want {
                    mismatches += 1;
                }
            }
        }
        assert!(
            mismatches > 60,
            "6% clock error over 1.28 ms must smear many symbols, got {mismatches}"
        );
    }

    #[test]
    fn clock_fault_smears_schedule_and_clears() {
        // A 1% clock fault on an otherwise perfect crystal must smear
        // the schedule like a hot ring oscillator would; clearing the
        // fault must restore nominal behaviour exactly.
        let mut tag = Tag::new(test_config());
        let bits: Vec<u8> = (0..62).map(|i| (i % 2) as u8).collect();
        let (trace, true_start) = query_trace(Duration::micros(36 + 64 * 20));
        let phy = PhyConfig::new(Mcs::ht(5));
        let score = |plan: &PlannedModulation| {
            let schedule = plan.to_tag_schedule(true_start, &phy, 64 * 5, TagMode::Phase0);
            let mut mismatches = 0;
            for (i, &bit) in bits.iter().enumerate() {
                let base = (2 + i) * 5;
                for s in base..base + 5 {
                    let interior = s > base && s < base + 4;
                    let want = if bit == 0 && interior {
                        TagMode::Phase180
                    } else {
                        TagMode::Phase0
                    };
                    if schedule.data[s] != want {
                        mismatches += 1;
                    }
                }
            }
            mismatches
        };

        tag.push_bits(&bits);
        let clean = score(&tag.respond(&trace).expect("nominal clock triggers"));
        assert_eq!(clean, 0);

        tag.set_clock_fault(0.01);
        // 1% over a ~320 µs signature is within the matcher tolerance
        // here, so the tag still triggers — but the schedule smears.
        tag.push_bits(&bits);
        let faulted = score(&tag.respond(&trace).expect("1% fault still triggers"));
        assert!(faulted > 20, "1% clock fault must smear symbols, got {faulted}");

        tag.set_clock_fault(0.0);
        tag.push_bits(&bits);
        let restored = score(&tag.respond(&trace).expect("restored clock triggers"));
        assert_eq!(restored, 0, "clearing the fault must restore nominal timing");
    }

    #[test]
    fn huge_clock_fault_rejects_trigger() {
        let mut tag = Tag::new(test_config());
        tag.set_clock_fault(0.2);
        tag.push_bits(&[0; 62]);
        let (trace, _) = query_trace(Duration::micros(36 + 64 * 20));
        assert!(
            tag.respond(&trace).is_none(),
            "20% clock error must fail the duration signature"
        );
    }

    #[test]
    fn underflow_pads_with_ones() {
        let mut tag = Tag::new(test_config());
        tag.push_bits(&[0, 0, 0]);
        let (trace, _) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        assert_eq!(&plan.bits[..3], &[0, 0, 0]);
        assert!(plan.bits[3..].iter().all(|&b| b == 1));
    }

    #[test]
    fn push_bytes_msb_first() {
        let mut tag = Tag::new(test_config());
        tag.push_bytes(&[0b1010_0000]);
        assert_eq!(tag.pending_bits(), 8);
        let (trace, _) = query_trace(Duration::micros(36 + 64 * 20));
        let plan = tag.respond(&trace).unwrap();
        assert_eq!(&plan.bits[..8], &[1, 0, 1, 0, 0, 0, 0, 0]);
    }
}
