//! Tag power budget and energy-harvesting feasibility.
//!
//! Quantifies the paper's §7 argument: the dominant consumer in a
//! backscatter tag is clock generation, so a design that avoids channel
//! shifting (and with it the ≥ 20 MHz oscillator) lands in the
//! few-microwatt regime where RF/ambient harvesting sustains battery-free
//! operation.

use crate::oscillator::Oscillator;

/// Power budget of one tag design.
#[derive(Debug, Clone)]
pub struct PowerBudget {
    /// Clock source.
    pub oscillator: Oscillator,
    /// Comparator + envelope-detector bias (µW).
    pub frontend_uw: f64,
    /// Digital state machine (µW) — scales with clock rate.
    pub logic_uw_per_mhz: f64,
    /// RF switch driver (µW).
    pub switch_uw: f64,
}

impl PowerBudget {
    /// WiTAG's budget: 50 kHz crystal + comparator + tiny logic + switch.
    pub fn witag() -> Self {
        PowerBudget {
            oscillator: Oscillator::witag_crystal(),
            frontend_uw: 0.6,
            logic_uw_per_mhz: 8.0,
            switch_uw: 0.3,
        }
    }

    /// A channel-shifting design (HitchHike/FreeRider/MOXcatter class):
    /// 20 MHz ring oscillator + the same front end and switch.
    pub fn channel_shifting() -> Self {
        PowerBudget {
            oscillator: Oscillator::shifting_ring(),
            frontend_uw: 0.6,
            logic_uw_per_mhz: 8.0,
            switch_uw: 0.3,
        }
    }

    /// Total active power (µW).
    pub fn total_uw(&self) -> f64 {
        self.oscillator.power_uw()
            + self.frontend_uw
            + self.logic_uw_per_mhz * (self.oscillator.nominal_hz() / 1e6)
            + self.switch_uw
    }

    /// Whether ambient harvesting at `harvest_uw` sustains the tag with a
    /// 20 % margin.
    pub fn battery_free_feasible(&self, harvest_uw: f64) -> bool {
        harvest_uw >= self.total_uw() * 1.2
    }
}

/// A harvest-and-spend energy store: the battery-free tag's capacitor.
///
/// The tag trickle-charges from ambient RF between queries and spends a
/// burst of energy each time it answers one (clock + logic + switch for
/// the query's duration). When the capacitor runs dry the tag simply
/// stays in its reference state — queries go unanswered until it
/// recovers, a graceful duty cycle rather than a failure.
#[derive(Debug, Clone)]
pub struct EnergyBank {
    /// Storage capacity in microjoules.
    pub capacity_uj: f64,
    /// Current charge in microjoules.
    pub level_uj: f64,
    /// Harvest income in microwatts.
    pub harvest_uw: f64,
}

impl EnergyBank {
    /// A bank with the given capacity, starting full.
    pub fn new(capacity_uj: f64, harvest_uw: f64) -> Self {
        assert!(capacity_uj > 0.0);
        EnergyBank {
            capacity_uj,
            level_uj: capacity_uj,
            harvest_uw,
        }
    }

    /// Trickle-charge over `dt_s` seconds.
    pub fn charge(&mut self, dt_s: f64) {
        self.level_uj = (self.level_uj + self.harvest_uw * dt_s).min(self.capacity_uj);
    }

    /// Try to spend `power_uw` for `dt_s` seconds. Returns `false` (and
    /// spends nothing) if the bank cannot cover it.
    pub fn try_spend(&mut self, power_uw: f64, dt_s: f64) -> bool {
        let cost = power_uw * dt_s;
        if cost > self.level_uj {
            return false;
        }
        self.level_uj -= cost;
        true
    }

    /// Fraction of capacity remaining.
    pub fn fill_fraction(&self) -> f64 {
        self.level_uj / self.capacity_uj
    }

    /// Steady-state duty cycle achievable for a load of `power_uw`:
    /// min(1, harvest/load).
    pub fn sustainable_duty_cycle(&self, power_uw: f64) -> f64 {
        (self.harvest_uw / power_uw).min(1.0)
    }
}

/// RF energy harvested (µW) from an incident field of `incident_dbm`,
/// assuming a rectenna efficiency of 30 % above its −20 dBm turn-on.
pub fn rf_harvest_uw(incident_dbm: f64) -> f64 {
    if incident_dbm < -20.0 {
        return 0.0;
    }
    let incident_uw = 10f64.powf(incident_dbm / 10.0) * 1000.0;
    0.3 * incident_uw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witag_is_microwatt_class() {
        let p = PowerBudget::witag().total_uw();
        assert!(p < 10.0, "WiTAG budget {p} µW must be single-digit µW");
    }

    #[test]
    fn shifting_designs_cost_much_more() {
        let witag = PowerBudget::witag().total_uw();
        let shifting = PowerBudget::channel_shifting().total_uw();
        assert!(
            shifting > 20.0 * witag,
            "channel shifting {shifting} µW vs WiTAG {witag} µW"
        );
    }

    #[test]
    fn harvest_feasibility() {
        let witag = PowerBudget::witag();
        // −10 dBm incident (close to the client): 100 µW * 0.3 = 30 µW.
        assert!(witag.battery_free_feasible(rf_harvest_uw(-10.0)));
        // Below rectifier turn-on: nothing harvested.
        assert_eq!(rf_harvest_uw(-30.0), 0.0);
        assert!(!witag.battery_free_feasible(rf_harvest_uw(-30.0)));
    }

    #[test]
    fn energy_bank_charges_and_spends() {
        let mut bank = EnergyBank::new(10.0, 5.0); // 10 µJ, 5 µW income
        assert!(bank.try_spend(4.6, 1.0), "full bank covers one second of WiTAG");
        assert!((bank.level_uj - 5.4).abs() < 1e-9);
        assert!(!bank.try_spend(100.0, 1.0), "cannot overdraw");
        assert!((bank.level_uj - 5.4).abs() < 1e-9, "failed spend must not drain");
        bank.charge(10.0);
        assert_eq!(bank.level_uj, bank.capacity_uj, "charge saturates at capacity");
    }

    #[test]
    fn duty_cycle_math() {
        let bank = EnergyBank::new(10.0, 2.3);
        // 4.6 µW load on 2.3 µW income -> 50% duty cycle.
        assert!((bank.sustainable_duty_cycle(4.6) - 0.5).abs() < 1e-9);
        // Income above load -> always on.
        assert_eq!(bank.sustainable_duty_cycle(1.0), 1.0);
    }

    #[test]
    fn witag_sustains_continuous_operation_near_the_client() {
        // At −10 dBm incident the harvest (30 µW) covers the 4.6 µW load
        // continuously; a channel-shifting design cannot even duty-cycle
        // usefully.
        let witag = PowerBudget::witag().total_uw();
        let shifting = PowerBudget::channel_shifting().total_uw();
        let bank = EnergyBank::new(50.0, rf_harvest_uw(-10.0));
        assert_eq!(bank.sustainable_duty_cycle(witag), 1.0);
        assert!(bank.sustainable_duty_cycle(shifting) < 0.2);
    }

    #[test]
    fn shifting_design_struggles_even_close() {
        let shifting = PowerBudget::channel_shifting();
        // Even at −10 dBm incident, 30 µW < 1.2 × (~200 µW).
        assert!(!shifting.battery_free_feasible(rf_harvest_uw(-10.0)));
    }
}
