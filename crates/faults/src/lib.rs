//! Seeded, deterministic fault injection for WiTAG experiments.
//!
//! The paper's evaluation (§4) runs over benign links; its future-work
//! section defers reliability under hostile conditions. This crate
//! provides the hostile conditions: a [`FaultPlan`] describes a set of
//! composable fault models and a [`FaultInjector`] replays them
//! deterministically from a seed, one [`RoundFaults`] verdict per query
//! round. The injector owns its own RNG stream, so attaching a plan to
//! an experiment never perturbs the experiment's existing random draws
//! — and an experiment with *no* plan takes zero extra draws and stays
//! bit-identical to pre-fault behaviour.
//!
//! Models (all optional, all composable):
//!
//! * **Query loss** — the A-MPDU query dies before the AP receives it.
//!   The tag still heard the trigger and modulated (energy spent, bits
//!   consumed) but the client gets no block ACK.
//! * **Block-ACK loss** — the query round completed but the BA frame
//!   carrying the tag's bits was dropped on the way back.
//! * **Burst interference** — a two-state Gilbert–Elliott chain; while
//!   in the bad state every readout bit flips independently with
//!   `flip_prob` (a co-channel interferer corrupting subframe CRCs at
//!   random).
//! * **Oscillator drift/jitter bursts** — episodes during which the
//!   tag's clock runs off-nominal by `center_ppm ± jitter_ppm`
//!   (re-sampled each round), smearing its modulation schedule against
//!   the subframe grid.
//! * **Brownout** — episodes during which the tag's harvester cannot
//!   power the modulator: triggers are missed outright.
//! * **Coherence collapse** — episodes during which the channel's
//!   coherence time shrinks by `factor` (a door slams, a forklift
//!   drives through the Fresnel zone), accelerating fading.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

use witag_sim::Rng;

/// Two-state Gilbert–Elliott burst-interference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-round probability of entering the bad state.
    pub p_enter: f64,
    /// Per-round probability of leaving the bad state.
    pub p_exit: f64,
    /// Per-bit readout flip probability while in the bad state.
    pub flip_prob: f64,
}

/// Episode shape shared by the episodic models: each round an inactive
/// model starts an episode with `p_start`; episode lengths are
/// geometric-ish with mean `mean_rounds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// Per-round probability of starting an episode while inactive.
    pub p_start: f64,
    /// Mean episode length in rounds (exponential draw, min 1).
    pub mean_rounds: f64,
}

/// Tag-oscillator drift/jitter bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBursts {
    /// When episodes start and how long they last.
    pub episode: Episode,
    /// Systematic frequency offset during an episode, in ppm.
    pub center_ppm: f64,
    /// Uniform per-round jitter around the centre, in ppm.
    pub jitter_ppm: f64,
}

/// Tag power brownouts: the harvester cannot fund a response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// When episodes start and how long they last.
    pub episode: Episode,
}

/// Channel coherence-time collapse episodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceCollapse {
    /// When episodes start and how long they last.
    pub episode: Episode,
    /// Coherence time divides by this factor while active (&gt; 1).
    pub factor: f64,
}

/// A complete, seeded fault schedule. Attach to an experiment with
/// [`witag::Experiment::attach_faults`] or drive a synthetic channel
/// directly through a [`FaultInjector`].
///
/// [`witag::Experiment::attach_faults`]: https://docs.rs/witag
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// First round (0-based) at which faults may fire.
    pub start_round: usize,
    /// Round after which faults stop firing (`None` = never stop).
    pub end_round: Option<usize>,
    /// Per-round probability the query never reaches the AP.
    pub query_loss: f64,
    /// Per-round probability the block ACK is dropped on the way back.
    pub block_ack_loss: f64,
    /// Optional Gilbert–Elliott burst interference.
    pub burst: Option<GilbertElliott>,
    /// Optional oscillator drift/jitter bursts.
    pub drift: Option<DriftBursts>,
    /// Optional power brownout episodes.
    pub brownout: Option<Brownout>,
    /// Optional coherence-collapse episodes.
    pub coherence: Option<CoherenceCollapse>,
}

impl FaultPlan {
    /// A plan with every model disabled. Attaching it must leave an
    /// experiment bit-identical to running with no plan at all (the
    /// zero-cost contract; tested in the workspace integration tests).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            start_round: 0,
            end_round: None,
            query_loss: 0.0,
            block_ack_loss: 0.0,
            burst: None,
            drift: None,
            brownout: None,
            coherence: None,
        }
    }

    /// The default "hostile" plan used by the acceptance tests: ≥20%
    /// block-ACK loss plus query loss, near-continuous burst
    /// interference (a co-channel occupant that rarely yields, flipping
    /// readout bits hard enough to defeat any single-shot decode),
    /// oscillator drift bursts, and brownouts.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            seed,
            start_round: 0,
            end_round: None,
            query_loss: 0.05,
            block_ack_loss: 0.20,
            burst: Some(GilbertElliott {
                p_enter: 0.30,
                p_exit: 0.02,
                flip_prob: 0.22,
            }),
            drift: Some(DriftBursts {
                episode: Episode {
                    p_start: 0.04,
                    mean_rounds: 8.0,
                },
                center_ppm: 9000.0,
                jitter_ppm: 3000.0,
            }),
            brownout: Some(Brownout {
                episode: Episode {
                    p_start: 0.05,
                    mean_rounds: 3.0,
                },
            }),
            coherence: Some(CoherenceCollapse {
                episode: Episode {
                    p_start: 0.02,
                    mean_rounds: 6.0,
                },
                factor: 40.0,
            }),
        }
    }

    /// [`FaultPlan::hostile`] with every probability scaled by
    /// `intensity` (clamped to keep probabilities valid). `0.0` is a
    /// quiet plan, `1.0` is the stock hostile plan; values above 1.0
    /// push harder. Used by the fault-sweep tools.
    pub fn hostile_scaled(seed: u64, intensity: f64) -> Self {
        let mut plan = Self::hostile(seed);
        let s = |p: f64| (p * intensity).clamp(0.0, 0.95);
        plan.query_loss = s(plan.query_loss);
        plan.block_ack_loss = s(plan.block_ack_loss);
        match &mut plan.burst {
            Some(ge) if intensity > 0.0 => {
                ge.p_enter = s(ge.p_enter);
                ge.flip_prob = s(ge.flip_prob);
            }
            other => *other = None,
        }
        match &mut plan.drift {
            Some(d) if intensity > 0.0 => d.episode.p_start = s(d.episode.p_start),
            other => *other = None,
        }
        match &mut plan.brownout {
            Some(b) if intensity > 0.0 => b.episode.p_start = s(b.episode.p_start),
            other => *other = None,
        }
        match &mut plan.coherence {
            Some(c) if intensity > 0.0 => c.episode.p_start = s(c.episode.p_start),
            other => *other = None,
        }
        plan
    }
}

/// The injector's verdict for one round: what breaks and how badly.
///
/// [`RoundFaults::inert`] (also `Default`) leaves the round untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundFaults {
    /// The query never reaches the AP: the tag responded, the client
    /// sees nothing.
    pub query_lost: bool,
    /// The block ACK is dropped after a completed round.
    pub ba_lost: bool,
    /// If set, flip each readout bit with this probability.
    pub readout_flip: Option<f64>,
    /// Fractional tag clock error for this round (0.0 = nominal).
    pub clock_error: f64,
    /// The tag's power rail is down: it cannot afford to respond.
    pub brownout: bool,
    /// Divide the channel coherence time by this factor (1.0 = none).
    pub coherence_scale: f64,
}

impl RoundFaults {
    /// A verdict that perturbs nothing.
    pub fn inert() -> Self {
        RoundFaults {
            query_lost: false,
            ba_lost: false,
            readout_flip: None,
            clock_error: 0.0,
            brownout: false,
            coherence_scale: 1.0,
        }
    }
}

impl Default for RoundFaults {
    fn default() -> Self {
        Self::inert()
    }
}

/// Fault classes, used as bit positions in the per-round trace mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultClass {
    /// Query lost before the AP.
    QueryLoss = 0,
    /// Block ACK lost after the round.
    BlockAckLoss = 1,
    /// Gilbert–Elliott bad state active.
    Burst = 2,
    /// Oscillator drift episode active.
    Drift = 3,
    /// Brownout episode active.
    Brownout = 4,
    /// Coherence-collapse episode active.
    CoherenceCollapse = 5,
}

impl FaultClass {
    /// Bit mask for this class in a trace entry.
    pub fn mask(self) -> u8 {
        1 << (self as u8)
    }

    /// The class's wire name in observability traces — the entry of
    /// [`witag_obs::FAULT_CLASS_NAMES`] at this class's bit position
    /// (the pairing is pinned by a test below).
    pub fn name(self) -> &'static str {
        witag_obs::FAULT_CLASS_NAMES[self as usize] // lint:allow(panic_path) discriminants < table length, pinned by test below
    }
}

/// Per-class counts of rounds on which each fault fired.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Rounds the injector has judged (including idle rounds).
    pub rounds: u64,
    /// Rounds whose query was lost.
    pub queries_lost: u64,
    /// Rounds whose block ACK was lost.
    pub block_acks_lost: u64,
    /// Rounds spent in the Gilbert–Elliott bad state.
    pub burst_rounds: u64,
    /// Rounds inside a drift episode.
    pub drift_rounds: u64,
    /// Rounds inside a brownout episode.
    pub brownout_rounds: u64,
    /// Rounds inside a coherence-collapse episode.
    pub collapse_rounds: u64,
}

/// Deterministic replay engine for a [`FaultPlan`].
///
/// Call [`FaultInjector::begin_round`] once per experiment round (idle
/// rounds included, so episodic models keep evolving while a client
/// backs off). Every random draw comes from a private stream seeded by
/// the plan, so two injectors built from equal plans produce identical
/// traces.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    round: usize,
    ge_bad: bool,
    drift_left: u64,
    brownout_left: u64,
    collapse_left: u64,
    counters: FaultCounters,
    trace: Vec<u8>,
}

impl FaultInjector {
    /// Build an injector that will replay `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Rng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            round: 0,
            ge_bad: false,
            drift_left: 0,
            brownout_left: 0,
            collapse_left: 0,
            counters: FaultCounters::default(),
            trace: Vec::new(),
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Per-class fault counts so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// One trace byte per round: the OR of [`FaultClass::mask`] for
    /// every fault active that round. Equal seeds ⇒ equal traces.
    pub fn trace(&self) -> &[u8] {
        &self.trace
    }

    fn episode_active(rng: &mut Rng, left: &mut u64, ep: &Episode) -> bool {
        if *left > 0 {
            *left -= 1;
            return true;
        }
        if rng.chance(ep.p_start) {
            let extra = rng.exponential(1.0 / ep.mean_rounds.max(1.0)).round() as u64;
            // This round counts as the first of the episode.
            *left = extra;
            return true;
        }
        false
    }

    /// Advance every model by one round and return the verdict.
    pub fn begin_round(&mut self) -> RoundFaults {
        let round = self.round;
        self.round += 1;
        self.counters.rounds += 1;

        let in_window =
            round >= self.plan.start_round && self.plan.end_round.is_none_or(|e| round < e);
        if !in_window {
            self.trace.push(0);
            return RoundFaults::inert();
        }

        let mut rf = RoundFaults::inert();
        let mut mask = 0u8;

        if self.plan.query_loss > 0.0 && self.rng.chance(self.plan.query_loss) {
            rf.query_lost = true;
            mask |= FaultClass::QueryLoss.mask();
            self.counters.queries_lost += 1;
        }
        if self.plan.block_ack_loss > 0.0 && self.rng.chance(self.plan.block_ack_loss) {
            rf.ba_lost = true;
            mask |= FaultClass::BlockAckLoss.mask();
            self.counters.block_acks_lost += 1;
        }
        if let Some(ge) = &self.plan.burst {
            if self.ge_bad {
                if self.rng.chance(ge.p_exit) {
                    self.ge_bad = false;
                }
            } else if self.rng.chance(ge.p_enter) {
                self.ge_bad = true;
            }
            if self.ge_bad {
                rf.readout_flip = Some(ge.flip_prob);
                mask |= FaultClass::Burst.mask();
                self.counters.burst_rounds += 1;
            }
        }
        if let Some(drift) = self.plan.drift {
            if Self::episode_active(&mut self.rng, &mut self.drift_left, &drift.episode) {
                let jitter = self.rng.range_f64(-drift.jitter_ppm, drift.jitter_ppm);
                rf.clock_error = (drift.center_ppm + jitter) * 1e-6;
                mask |= FaultClass::Drift.mask();
                self.counters.drift_rounds += 1;
            }
        }
        if let Some(b) = self.plan.brownout {
            if Self::episode_active(&mut self.rng, &mut self.brownout_left, &b.episode) {
                rf.brownout = true;
                mask |= FaultClass::Brownout.mask();
                self.counters.brownout_rounds += 1;
            }
        }
        if let Some(c) = self.plan.coherence {
            if Self::episode_active(&mut self.rng, &mut self.collapse_left, &c.episode) {
                rf.coherence_scale = c.factor.max(1.0);
                mask |= FaultClass::CoherenceCollapse.mask();
                self.counters.collapse_rounds += 1;
            }
        }

        self.trace.push(mask);
        rf
    }

    /// [`begin_round`](Self::begin_round) plus observability: when at
    /// least one class fired and `rec` is attached, emits one
    /// [`witag_obs::Event::FaultInjected`] stamped with `round` (the
    /// caller's global round index — the injector's private counter may
    /// be shard-local). Quiet rounds emit nothing, so hostile traces
    /// stay sparse. The verdict and every internal draw are identical
    /// to `begin_round`; a detached recorder makes this a strict
    /// synonym.
    pub fn begin_round_obs(&mut self, round: u64, rec: &mut dyn witag_obs::Recorder) -> RoundFaults {
        let rf = self.begin_round();
        if rec.enabled() {
            let mask = self.trace.last().copied().unwrap_or(0);
            if mask != 0 {
                rec.record(&witag_obs::Event::FaultInjected { round, mask });
            }
        }
        rf
    }

    /// Flip each bit of `bits` (values 0/1) with probability `p`,
    /// drawing from the injector's private stream. Used by the
    /// experiment to apply [`RoundFaults::readout_flip`].
    pub fn corrupt_readout(&mut self, bits: &mut [u8], p: f64) {
        for b in bits.iter_mut() {
            if self.rng.chance(p) {
                *b ^= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_inert() {
        let mut inj = FaultInjector::new(FaultPlan::quiet(7));
        for _ in 0..200 {
            assert_eq!(inj.begin_round(), RoundFaults::inert());
        }
        assert_eq!(inj.counters().queries_lost, 0);
        assert!(inj.trace().iter().all(|&m| m == 0));
    }

    #[test]
    fn same_seed_same_trace() {
        let plan = FaultPlan::hostile(42);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let va: Vec<RoundFaults> = (0..500).map(|_| a.begin_round()).collect();
        let vb: Vec<RoundFaults> = (0..500).map(|_| b.begin_round()).collect();
        assert_eq!(va, vb);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultPlan::hostile(1));
        let mut b = FaultInjector::new(FaultPlan::hostile(2));
        let va: Vec<u8> = {
            (0..300).for_each(|_| {
                a.begin_round();
            });
            a.trace().to_vec()
        };
        let vb: Vec<u8> = {
            (0..300).for_each(|_| {
                b.begin_round();
            });
            b.trace().to_vec()
        };
        assert_ne!(va, vb);
    }

    #[test]
    fn hostile_hits_target_loss_rates() {
        let mut inj = FaultInjector::new(FaultPlan::hostile(9));
        let n = 4000u64;
        for _ in 0..n {
            inj.begin_round();
        }
        let c = inj.counters();
        let ba_rate = c.block_acks_lost as f64 / n as f64;
        assert!(
            (0.17..0.23).contains(&ba_rate),
            "BA loss rate {ba_rate} should be ~0.20"
        );
        assert!(c.drift_rounds > 0 && c.brownout_rounds > 0 && c.burst_rounds > 0);
    }

    #[test]
    fn episodes_last_multiple_rounds() {
        let plan = FaultPlan {
            brownout: Some(Brownout {
                episode: Episode {
                    p_start: 0.05,
                    mean_rounds: 6.0,
                },
            }),
            ..FaultPlan::quiet(3)
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..2000 {
            inj.begin_round();
        }
        // Mean episode ≥ 1 round; with mean 6 the trace should show runs.
        let trace = inj.trace();
        let mut longest = 0usize;
        let mut cur = 0usize;
        for &m in trace {
            if m & FaultClass::Brownout.mask() != 0 {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 0;
            }
        }
        assert!(longest >= 3, "longest brownout run {longest} too short");
    }

    #[test]
    fn fault_window_respected() {
        let plan = FaultPlan {
            start_round: 10,
            end_round: Some(20),
            ..FaultPlan::hostile(11)
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..40 {
            inj.begin_round();
        }
        let trace = inj.trace();
        assert!(trace[..10].iter().all(|&m| m == 0));
        assert!(trace[20..].iter().all(|&m| m == 0));
    }

    #[test]
    fn corrupt_readout_flips_roughly_p() {
        let mut inj = FaultInjector::new(FaultPlan::quiet(5));
        let mut bits = vec![0u8; 10_000];
        inj.corrupt_readout(&mut bits, 0.3);
        let flips = bits.iter().filter(|&&b| b == 1).count();
        assert!((2700..3300).contains(&flips), "flips {flips}");
    }

    #[test]
    fn scaled_zero_is_quiet() {
        let plan = FaultPlan::hostile_scaled(4, 0.0);
        assert_eq!(plan.query_loss, 0.0);
        assert_eq!(plan.block_ack_loss, 0.0);
        assert!(plan.burst.is_none() && plan.drift.is_none());
        assert!(plan.brownout.is_none() && plan.coherence.is_none());
    }

    #[test]
    fn class_names_pin_the_obs_bit_positions() {
        // The schema's FAULT_CLASS_NAMES table is indexed by bit
        // position; this is the cross-crate contract check.
        let classes = [
            (FaultClass::QueryLoss, "query_loss"),
            (FaultClass::BlockAckLoss, "ba_loss"),
            (FaultClass::Burst, "burst"),
            (FaultClass::Drift, "drift"),
            (FaultClass::Brownout, "brownout"),
            (FaultClass::CoherenceCollapse, "coherence_collapse"),
        ];
        assert_eq!(classes.len(), witag_obs::FAULT_CLASS_NAMES.len());
        for (class, name) in classes {
            assert_eq!(class.name(), name);
            assert_eq!(class.mask(), 1 << (class as u8));
            assert_eq!(witag_obs::FAULT_CLASS_NAMES[class as usize], name);
        }
    }

    #[test]
    fn begin_round_obs_matches_begin_round_and_emits_sparse_events() {
        use witag_obs::{BufferRecorder, Event, NullRecorder};

        let plan = FaultPlan::hostile(42);
        let mut plain = FaultInjector::new(plan.clone());
        let mut nulled = FaultInjector::new(plan.clone());
        let mut traced = FaultInjector::new(plan);
        let mut null = NullRecorder;
        let mut buf = BufferRecorder::new();

        for round in 0..500u64 {
            let a = plain.begin_round();
            let b = nulled.begin_round_obs(round, &mut null);
            let c = traced.begin_round_obs(round, &mut buf);
            assert_eq!(a, b, "round {round}: detached obs must be a synonym");
            assert_eq!(a, c, "round {round}: attached obs must not perturb draws");
        }
        assert_eq!(plain.trace(), traced.trace());
        assert_eq!(plain.counters(), traced.counters());

        // One event per nonzero trace byte, stamped with its round.
        let faulted: Vec<(u64, u8)> = plain
            .trace()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != 0)
            .map(|(i, &m)| (i as u64, m))
            .collect();
        assert!(!faulted.is_empty(), "hostile plan should fire");
        assert_eq!(buf.events().len(), faulted.len());
        for (event, (round, mask)) in buf.events().iter().zip(&faulted) {
            assert_eq!(event, &Event::FaultInjected { round: *round, mask: *mask });
        }
    }
}
