//! Offline, API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io mirror, so this crate covers
//! the slice of criterion's surface the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `throughput` / `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It measures wall-clock time with a few fixed-size samples and prints
//! a one-line mean per benchmark — no statistics, plots, or HTML
//! reports. Good enough for relative before/after comparisons in this
//! container; run real criterion outside it for publishable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How a routine's per-iteration cost is normalised in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How batched inputs are sized in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One input per routine call (the only mode the workspace uses).
    SmallInput,
    /// Alias of `SmallInput` in this subset.
    LargeInput,
}

/// Times a benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times and record the total duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Run `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples (this subset also uses it as the
    /// per-sample iteration count, capped for cheap runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up pass, untimed.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);

        let iters = self.samples.clamp(1, 20);
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:>10.1} elem/s", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.2} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{}/{}: {:>12.3} µs/iter{}", self.name, id, per_iter * 1e6, rate);
        self
    }

    /// End the group (report is already printed incrementally).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` builder.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Time a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.throughput(Throughput::Elements(1)).sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
