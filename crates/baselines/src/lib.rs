//! # witag-baselines — the systems WiTAG is compared against
//!
//! Behavioural and (where the comparison needs it) functional models of
//! prior WiFi backscatter systems, so the paper's §1/§2 comparisons are
//! regenerated from code rather than restated as prose:
//!
//! * [`systems`] — profiles of WiFi Backscatter, BackFi, Passive WiFi,
//!   HitchHike, FreeRider, MOXcatter and WiTAG along the paper's four
//!   requirements;
//! * [`matrix`] — the requirements matrix (REQS experiment);
//! * [`dsss`] — a functional 802.11b DSSS link with HitchHike's codeword
//!   translation, demonstrating both its operation and its failure modes
//!   (FCS drop on unmodified APs, ICV/MIC rejection on protected
//!   networks);
//! * [`ofdm_shift`] — FreeRider's per-OFDM-symbol and MOXcatter's
//!   per-packet codeword translation, on real legacy OFDM PPDUs;
//! * [`interference`] — secondary-channel victim-loss model for
//!   channel-shifting tags (INTF experiment).
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

pub mod dsss;
pub mod interference;
pub mod ofdm_shift;
pub mod matrix;
pub mod systems;

pub use dsss::{hitchhike_exchange, HitchhikeDelivery};
pub use interference::{victim_loss_probability, ShiftingTagWorkload, VictimTraffic};
pub use matrix::{build_matrix, render_matrix, MatrixRow};
pub use ofdm_shift::{freerider_translate, moxcatter_translate, recover_symbol_rotations};
pub use systems::{all_systems, Mechanism, PhySupport, SystemProfile};
