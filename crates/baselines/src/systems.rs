//! Descriptors of prior WiFi-backscatter systems (paper §1, §2).
//!
//! Each system is characterised along the paper's four requirements —
//! WiFi compatibility, encryption support, power, interference — plus the
//! deployment facts the related-work section cites. These feed the
//! requirements-matrix experiment (REQS) and the power comparison (PWR).

use witag_tag::oscillator::Oscillator;

/// Which PHY generations a backscatter system can ride on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhySupport {
    /// 802.11b DSSS only (obsolete networks).
    DsssOnly,
    /// 802.11g OFDM single-stream.
    OfdmG,
    /// 802.11n (single-stream modulation tricks).
    OfdmN,
    /// Any A-MPDU-capable standard: n, ac, ax.
    AmpduAny,
    /// Requires fully custom (non-WiFi) infrastructure.
    Custom,
}

/// How a system turns tag state into something a receiver can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Rewrites PHY symbols into other valid symbols, shifted to a
    /// second channel (HitchHike / FreeRider / MOXcatter).
    SymbolTranslation,
    /// Full-duplex self-interference cancellation reader (BackFi).
    FullDuplexReader,
    /// Generates WiFi frames directly from backscatter (Passive WiFi —
    /// needs a dedicated carrier emitter).
    SyntheticFrames,
    /// Channel-level corruption of MAC subframes (WiTAG).
    SubframeCorruption,
    /// CSI/RSSI modulation read by a helper device (WiFi Backscatter'14).
    CsiModulation,
}

/// One prior system (or WiTAG itself) for comparison purposes.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// Published name.
    pub name: &'static str,
    /// Venue/year of publication.
    pub venue: &'static str,
    /// PHY generations it works with.
    pub phy: PhySupport,
    /// Tag-to-receiver mechanism.
    pub mechanism: Mechanism,
    /// Needs modified AP/receiver software or extra hardware.
    pub needs_infrastructure_mods: bool,
    /// Works when the network uses WEP/WPA.
    pub works_with_encryption: bool,
    /// Reflects onto a secondary channel without carrier sensing.
    pub shifts_channel: bool,
    /// Clock the tag needs.
    pub oscillator: Oscillator,
    /// Published throughput range (bps).
    pub throughput_bps: (f64, f64),
}

impl SystemProfile {
    /// The paper's §1 requirements, evaluated for this system. Order:
    /// [WiFi-compatible (n/ac, no mods), works-with-encryption,
    /// low-power (µW-class), non-interfering].
    pub fn requirements(&self) -> [bool; 4] {
        let wifi_compatible =
            matches!(self.phy, PhySupport::AmpduAny) && !self.needs_infrastructure_mods;
        let low_power = self.oscillator.power_uw() < 100.0;
        [
            wifi_compatible,
            self.works_with_encryption,
            low_power,
            !self.shifts_channel,
        ]
    }

    /// `true` if every requirement is met.
    pub fn meets_all(&self) -> bool {
        self.requirements().iter().all(|&r| r)
    }
}

/// All compared systems, WiTAG last.
pub fn all_systems() -> Vec<SystemProfile> {
    vec![
        SystemProfile {
            name: "WiFi Backscatter",
            venue: "SIGCOMM'14",
            phy: PhySupport::Custom,
            mechanism: Mechanism::CsiModulation,
            needs_infrastructure_mods: true,
            works_with_encryption: true, // reads CSI, not payloads
            shifts_channel: false,
            oscillator: Oscillator::Ring { freq_hz: 1e6 },
            throughput_bps: (100.0, 1_000.0),
        },
        SystemProfile {
            name: "BackFi",
            venue: "SIGCOMM'15",
            phy: PhySupport::Custom,
            mechanism: Mechanism::FullDuplexReader,
            needs_infrastructure_mods: true,
            works_with_encryption: false,
            shifts_channel: false,
            oscillator: Oscillator::Ring { freq_hz: 20e6 },
            throughput_bps: (1e6, 5e6),
        },
        SystemProfile {
            name: "Passive WiFi",
            venue: "NSDI'16",
            phy: PhySupport::DsssOnly,
            mechanism: Mechanism::SyntheticFrames,
            needs_infrastructure_mods: true, // dedicated carrier emitter
            works_with_encryption: false,
            shifts_channel: true,
            oscillator: Oscillator::Ring { freq_hz: 20e6 },
            throughput_bps: (1e6, 11e6),
        },
        SystemProfile {
            name: "HitchHike",
            venue: "SenSys'16",
            phy: PhySupport::DsssOnly,
            mechanism: Mechanism::SymbolTranslation,
            needs_infrastructure_mods: true, // second AP + host comparison
            works_with_encryption: false,
            shifts_channel: true,
            oscillator: Oscillator::shifting_ring(),
            throughput_bps: (60e3, 300e3),
        },
        SystemProfile {
            name: "FreeRider",
            venue: "CoNEXT'17",
            phy: PhySupport::OfdmG,
            mechanism: Mechanism::SymbolTranslation,
            needs_infrastructure_mods: true,
            works_with_encryption: false,
            shifts_channel: true,
            oscillator: Oscillator::shifting_ring(),
            throughput_bps: (15e3, 60e3),
        },
        SystemProfile {
            name: "MOXcatter",
            venue: "MobiSys'18",
            phy: PhySupport::OfdmN,
            mechanism: Mechanism::SymbolTranslation,
            needs_infrastructure_mods: true,
            works_with_encryption: false,
            shifts_channel: true,
            oscillator: Oscillator::shifting_ring(),
            throughput_bps: (1e3, 50e3),
        },
        SystemProfile {
            name: "WiTAG",
            venue: "HotNets'18",
            phy: PhySupport::AmpduAny,
            mechanism: Mechanism::SubframeCorruption,
            needs_infrastructure_mods: false,
            works_with_encryption: true,
            shifts_channel: false,
            oscillator: Oscillator::Crystal { freq_hz: 250e3 },
            throughput_bps: (39e3, 40e3),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_witag_meets_all_requirements() {
        let systems = all_systems();
        for s in &systems {
            if s.name == "WiTAG" {
                assert!(s.meets_all(), "WiTAG must satisfy the §1 checklist");
            } else {
                assert!(
                    !s.meets_all(),
                    "{} unexpectedly satisfies every requirement",
                    s.name
                );
            }
        }
    }

    #[test]
    fn symbol_translators_all_shift_channels_and_break_encryption() {
        for s in all_systems() {
            if s.mechanism == Mechanism::SymbolTranslation {
                assert!(s.shifts_channel, "{}", s.name);
                assert!(!s.works_with_encryption, "{}", s.name);
            }
        }
    }

    #[test]
    fn channel_shifters_need_power_hungry_clocks() {
        for s in all_systems() {
            if s.shifts_channel && s.mechanism == Mechanism::SymbolTranslation {
                assert!(
                    s.oscillator.nominal_hz() >= 20e6,
                    "{} must need a ≥20 MHz clock",
                    s.name
                );
            }
        }
    }

    #[test]
    fn witag_clock_is_cheapest_among_backscatter_transmitters() {
        // CSI-modulation (WiFi Backscatter'14) tags also run slow clocks;
        // the paper's power argument targets the channel-shifting /
        // frame-synthesising designs, which need ≥ 20 MHz. Those must
        // cost an order of magnitude more than WiTAG's clock.
        let systems = all_systems();
        let witag = systems.iter().find(|s| s.name == "WiTAG").unwrap();
        for s in &systems {
            if s.oscillator.nominal_hz() >= 20e6 {
                assert!(
                    s.oscillator.power_uw() > 10.0 * witag.oscillator.power_uw(),
                    "{} clock should dwarf WiTAG's",
                    s.name
                );
            }
        }
    }
}
