//! Secondary-channel interference: what channel-shifting tags cost other
//! networks (paper §1 "Non-Interfering", §2, §7).
//!
//! HitchHike/FreeRider/MOXcatter tags reflect the excitation signal onto
//! an adjacent channel ≥ 20 MHz away **without carrier sensing** — a
//! power-constrained tag cannot afford a receiver to check whether that
//! channel is busy. Any station operating there sees the backscattered
//! burst as a collision. WiTAG emits nothing on any secondary channel, so
//! its interference contribution is identically zero.
//!
//! The model: victim traffic on the secondary channel is a Poisson frame
//! process; every backscatter burst that overlaps a victim frame corrupts
//! it. We compute the victim's frame-loss probability analytically and by
//! Monte Carlo.

use witag_sim::rng::Rng;

/// A channel-shifting backscatter workload.
#[derive(Debug, Clone, Copy)]
pub struct ShiftingTagWorkload {
    /// Backscatter bursts per second (each excitation packet the tag
    /// rides produces one burst on the secondary channel).
    pub bursts_per_s: f64,
    /// Duration of one burst (s) — the excitation packet's airtime.
    pub burst_duration_s: f64,
}

/// Victim traffic on the secondary channel.
#[derive(Debug, Clone, Copy)]
pub struct VictimTraffic {
    /// Frames per second.
    pub frames_per_s: f64,
    /// Frame airtime (s).
    pub frame_duration_s: f64,
}

/// Analytic victim frame-loss probability: a victim frame of length `Tf`
/// is hit iff a burst (length `Tb`) starts within `(−Tb, Tf)` of its
/// start; with Poisson bursts at rate λ the hit probability is
/// `1 − exp(−λ·(Tf + Tb))`.
pub fn victim_loss_probability(tag: &ShiftingTagWorkload, victim: &VictimTraffic) -> f64 {
    let window = victim.frame_duration_s + tag.burst_duration_s;
    1.0 - (-tag.bursts_per_s * window).exp()
}

/// Monte-Carlo estimate of the same quantity (used to validate the
/// analytic form and to support non-Poisson extensions).
pub fn simulate_victim_loss(
    tag: &ShiftingTagWorkload,
    victim: &VictimTraffic,
    horizon_s: f64,
    rng: &mut Rng,
) -> f64 {
    // Generate burst intervals.
    let mut bursts: Vec<(f64, f64)> = Vec::new();
    let mut t = rng.exponential(tag.bursts_per_s);
    while t < horizon_s {
        bursts.push((t, t + tag.burst_duration_s));
        t += tag.burst_duration_s + rng.exponential(tag.bursts_per_s);
    }
    // Generate victim frames and count overlaps.
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut v = rng.exponential(victim.frames_per_s);
    let mut cursor = 0usize;
    while v < horizon_s {
        let end = v + victim.frame_duration_s;
        while cursor < bursts.len() && bursts[cursor].1 < v {
            cursor += 1;
        }
        let hit = bursts[cursor..]
            .iter()
            .take_while(|&&(s, _)| s < end)
            .any(|&(s, e)| s < end && e > v);
        if hit {
            hits += 1;
        }
        total += 1;
        v = end + rng.exponential(victim.frames_per_s);
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// WiTAG's secondary-channel emission: none. Provided so the comparison
/// table is generated from code, not prose.
pub fn witag_victim_loss_probability() -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> ShiftingTagWorkload {
        ShiftingTagWorkload {
            bursts_per_s: 100.0,
            burst_duration_s: 1e-3,
        }
    }

    fn victim() -> VictimTraffic {
        VictimTraffic {
            frames_per_s: 200.0,
            frame_duration_s: 0.5e-3,
        }
    }

    #[test]
    fn analytic_matches_simulation() {
        let mut rng = Rng::seed_from_u64(3);
        let analytic = victim_loss_probability(&tag(), &victim());
        let simulated = simulate_victim_loss(&tag(), &victim(), 400.0, &mut rng);
        assert!(
            (analytic - simulated).abs() < 0.02,
            "analytic {analytic} vs simulated {simulated}"
        );
    }

    #[test]
    fn loss_grows_with_burst_rate() {
        let v = victim();
        let p_low = victim_loss_probability(
            &ShiftingTagWorkload {
                bursts_per_s: 10.0,
                burst_duration_s: 1e-3,
            },
            &v,
        );
        let p_high = victim_loss_probability(
            &ShiftingTagWorkload {
                bursts_per_s: 500.0,
                burst_duration_s: 1e-3,
            },
            &v,
        );
        assert!(p_high > p_low * 5.0);
    }

    #[test]
    fn witag_contributes_nothing() {
        assert_eq!(witag_victim_loss_probability(), 0.0);
    }

    #[test]
    fn a_busy_shifting_tag_is_devastating() {
        // A tag riding saturated excitation traffic (~600 frames/s of
        // 1.5 ms) hits the majority of victim frames.
        let p = victim_loss_probability(
            &ShiftingTagWorkload {
                bursts_per_s: 600.0,
                burst_duration_s: 1.5e-3,
            },
            &victim(),
        );
        assert!(p > 0.5, "got {p}");
    }
}
