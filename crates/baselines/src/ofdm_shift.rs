//! FreeRider and MOXcatter: OFDM codeword translation, functionally.
//!
//! FreeRider (CoNEXT'17) extends HitchHike's trick to 802.11g OFDM: the
//! tag phase-rotates the *backscattered copy* of each OFDM symbol by 0°
//! or 180° (one tag bit per symbol), shifting it to a second channel
//! where a helper AP captures it; the host recovers tag bits by
//! comparing the two copies. MOXcatter (MobiSys'18) faces 802.11n MIMO,
//! where per-symbol rotation of spatially-multiplexed streams is not
//! decodable, so it falls back to one tag bit per *packet*.
//!
//! These models run on the reproduction's real legacy OFDM PPDUs: the
//! rotation, the two-receiver comparison, the noise behaviour, and —
//! crucially for the paper's §2 argument — the throughput collapse from
//! per-symbol to per-packet embedding, and the same FCS/encryption
//! incompatibilities as HitchHike (the tag bits live in payload symbols).

use witag_phy::complex::Complex64;
use witag_phy::legacy::LegacyPpdu;
use witag_phy::ppdu::OfdmSymbol;
use witag_sim::rng::Rng;

/// Apply FreeRider's per-symbol phase translation to a backscattered
/// copy: symbol `i` is rotated 180° iff `tag_bits[i] == 1`.
pub fn freerider_translate(ppdu: &LegacyPpdu, tag_bits: &[u8]) -> LegacyPpdu {
    let symbols = ppdu
        .symbols
        .iter()
        .enumerate()
        .map(|(i, sym)| {
            let flip = tag_bits.get(i).copied().unwrap_or(0) == 1;
            OfdmSymbol {
                streams: sym
                    .streams
                    .iter()
                    .map(|carriers| {
                        carriers
                            .iter()
                            .map(|&c| if flip { -c } else { c })
                            .collect()
                    })
                    .collect(),
            }
        })
        .collect();
    LegacyPpdu {
        rate: ppdu.rate,
        psdu_len: ppdu.psdu_len,
        ltf: ppdu.ltf.clone(),
        symbols,
    }
}

/// MOXcatter's per-packet embedding: the whole PPDU is rotated by the one
/// tag bit.
pub fn moxcatter_translate(ppdu: &LegacyPpdu, tag_bit: u8) -> LegacyPpdu {
    freerider_translate(ppdu, &vec![tag_bit; ppdu.symbols.len()])
}

/// The helper-AP + host comparison: recover per-symbol tag bits by
/// correlating each backscattered symbol against the original copy.
/// Both copies must be available — the second-AP requirement.
pub fn recover_symbol_rotations(original: &LegacyPpdu, shifted: &LegacyPpdu) -> Vec<u8> {
    original
        .symbols
        .iter()
        .zip(shifted.symbols.iter())
        .map(|(o, s)| {
            let corr: Complex64 = o.streams[0]
                .iter()
                .zip(s.streams[0].iter())
                .map(|(&a, &b)| b * a.conj())
                .sum();
            u8::from(corr.re < 0.0)
        })
        .collect()
}

/// Tag bits per excitation packet for each design — the §2 throughput
/// story in one function. WiTAG rides subframes (≤ 64/packet); FreeRider
/// rides OFDM symbols; MOXcatter gets one bit per packet.
pub fn bits_per_packet(n_symbols: usize, witag_subframes: usize) -> (usize, usize, usize) {
    (witag_subframes, n_symbols, 1)
}

/// Add AWGN to every subcarrier of a copy (the backscattered path is
/// much weaker than the direct one; callers pass its post-processing
/// effective noise).
pub fn add_noise(ppdu: &LegacyPpdu, noise_std: f64, rng: &mut Rng) -> LegacyPpdu {
    let perturb = |carriers: &[Complex64], rng: &mut Rng| -> Vec<Complex64> {
        carriers
            .iter()
            .map(|&c| {
                c + witag_phy::c64(rng.gaussian() * noise_std, rng.gaussian() * noise_std)
            })
            .collect()
    };
    LegacyPpdu {
        rate: ppdu.rate,
        psdu_len: ppdu.psdu_len,
        ltf: OfdmSymbol {
            streams: vec![perturb(&ppdu.ltf.streams[0], rng)],
        },
        symbols: ppdu
            .symbols
            .iter()
            .map(|s| OfdmSymbol {
                streams: vec![perturb(&s.streams[0], rng)],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witag_phy::legacy::{legacy_receive, legacy_transmit, LegacyRate};

    fn excitation(len: usize) -> LegacyPpdu {
        legacy_transmit(LegacyRate::M12, &vec![0xC5u8; len])
    }

    #[test]
    fn freerider_roundtrip_clean() {
        let ppdu = excitation(100);
        let tag_bits: Vec<u8> = (0..ppdu.symbols.len()).map(|i| (i % 3 == 0) as u8).collect();
        let shifted = freerider_translate(&ppdu, &tag_bits);
        assert_eq!(recover_symbol_rotations(&ppdu, &shifted), tag_bits);
    }

    #[test]
    fn freerider_survives_noise() {
        let mut rng = Rng::seed_from_u64(41);
        let ppdu = excitation(200);
        let tag_bits: Vec<u8> = (0..ppdu.symbols.len())
            .map(|_| (rng.next_u64() & 1) as u8)
            .collect();
        let shifted = add_noise(&freerider_translate(&ppdu, &tag_bits), 0.15, &mut rng);
        let recovered = recover_symbol_rotations(&ppdu, &shifted);
        let errors = recovered
            .iter()
            .zip(tag_bits.iter())
            .filter(|(a, b)| a != b)
            .count();
        // 48-subcarrier correlation has huge processing gain.
        assert_eq!(errors, 0, "noise must not break symbol correlation");
    }

    #[test]
    fn moxcatter_one_bit_per_packet() {
        let ppdu = excitation(100);
        for bit in [0u8, 1] {
            let shifted = moxcatter_translate(&ppdu, bit);
            let rotations = recover_symbol_rotations(&ppdu, &shifted);
            assert!(rotations.iter().all(|&b| b == bit));
        }
    }

    #[test]
    fn shifted_copy_is_undecodable_as_a_frame() {
        // The backscattered copy no longer decodes to the original PSDU
        // (the rotations corrupt the payload), so a stock AP would FCS-
        // drop it — the same §2 incompatibility as HitchHike, now shown
        // on real OFDM.
        let psdu = vec![0x3Au8; 150];
        let ppdu = legacy_transmit(LegacyRate::M12, &psdu);
        let tag_bits: Vec<u8> = (0..ppdu.symbols.len()).map(|i| (i % 2) as u8).collect();
        let shifted = freerider_translate(&ppdu, &tag_bits);
        let decoded = legacy_receive(&shifted, 1e-6);
        assert_ne!(decoded, psdu, "translated copy must not decode to the original");
    }

    #[test]
    fn throughput_ordering_matches_section2() {
        // Per excitation packet: FreeRider >= WiTAG >> MOXcatter — but
        // FreeRider needs a second AP, a shifted channel, and an open
        // network; the requirements matrix carries those columns.
        let ppdu = excitation(1500);
        let (witag, freerider, mox) = bits_per_packet(ppdu.symbols.len(), 64);
        assert!(freerider > witag);
        assert!(witag > mox);
        assert_eq!(mox, 1);
    }
}
