//! A functional 802.11b DSSS link and the HitchHike codeword-translation
//! tag — the baseline WiTAG's §2 contrasts itself against.
//!
//! 802.11b at 1 Mbps spreads each data bit over an 11-chip Barker code
//! with differential BPSK. HitchHike's insight ("codeword translation"):
//! inverting the phase of the backscattered chips maps a valid DBPSK
//! symbol onto the *other* valid symbol, so the shifted copy decodes as
//! `data ⊕ tag` and the host recovers the tag bits by XOR against the
//! original packet heard on the primary channel.
//!
//! The model captures exactly what the reproduction needs:
//!
//! * the tag bits ride *inside the payload bits*, so the backscattered
//!   copy's FCS fails and, on protected networks, so does the ICV/MIC —
//!   the encryption incompatibility (§2, item 1–2);
//! * decoding needs the original *and* the shifted copy (second AP);
//! * the translation itself is faithful: chip-level phase inversion.

use witag_crypto::{crc32, Rc4};
use witag_phy::complex::{c64, Complex64};
use witag_sim::rng::Rng;

/// The 11-chip Barker sequence used by 802.11b.
pub const BARKER11: [i8; 11] = [1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1];

/// Spread one bit stream to Barker chips with DBPSK (differential
/// encoding: a `1` flips the phase of the previous symbol).
pub fn spread(bits: &[u8]) -> Vec<Complex64> {
    let mut chips = Vec::with_capacity(bits.len() * 11);
    let mut phase = 1.0f64;
    for &b in bits {
        if b == 1 {
            phase = -phase;
        }
        for &c in BARKER11.iter() {
            chips.push(c64(phase * c as f64, 0.0));
        }
    }
    chips
}

/// Despread chips back to bits (correlate with Barker, then differential
/// decode).
pub fn despread(chips: &[Complex64]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(chips.len() / 11);
    let mut prev = 1.0f64;
    for sym in chips.chunks(11) {
        if sym.len() < 11 {
            break;
        }
        let corr: f64 = sym
            .iter()
            .zip(BARKER11.iter())
            .map(|(c, &b)| c.re * b as f64)
            .sum();
        let sign = if corr >= 0.0 { 1.0 } else { -1.0 };
        bits.push(u8::from(sign != prev));
        prev = sign;
    }
    bits
}

/// HitchHike tag: phase-invert chips so the DBPSK decode becomes
/// `data ⊕ tag` ("codeword translation"). One tag bit per DSSS symbol.
///
/// DBPSK decodes phase *transitions*, so to XOR tag bit `i` into decoded
/// bit `i` the tag must flip the absolute phase of every symbol from `i`
/// onward — i.e. apply the differentially-encoded (running-XOR) tag
/// stream. That running XOR is exactly what HitchHike's toggling RF
/// switch produces naturally.
pub fn codeword_translate(chips: &[Complex64], tag_bits: &[u8]) -> Vec<Complex64> {
    let mut state = false; // differential encoder state
    chips
        .chunks(11)
        .enumerate()
        .flat_map(|(i, sym)| {
            if tag_bits.get(i).copied().unwrap_or(0) == 1 {
                state = !state;
            }
            let flip = state;
            sym.iter()
                .map(move |&c| if flip { -c } else { c })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Recover tag bits by XOR of the original and backscattered decodes —
/// the two-AP + host comparison HitchHike requires.
pub fn recover_tag_bits(original: &[u8], backscattered: &[u8]) -> Vec<u8> {
    original
        .iter()
        .zip(backscattered.iter())
        .map(|(a, b)| a ^ b)
        .collect()
}

/// Outcome of delivering a HitchHike-modified frame to an AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitchhikeDelivery {
    /// Open network, modified AP that ignores FCS failures: tag data
    /// recoverable.
    RecoveredWithModifiedAp,
    /// Open network, *unmodified* AP: frame dropped (FCS fail).
    DroppedByFcs,
    /// WEP/WPA network: payload no longer decrypts/verifies.
    RejectedByCrypto,
}

/// Simulate delivering a payload whose bits were XOR-modified by a tag to
/// an AP, under the given network protection.
///
/// `wep_key`: `Some` simulates a WEP network (RC4 + ICV); `None` an open
/// one. `ap_modified`: whether the AP accepts FCS-failing frames (the
/// modification HitchHike needs).
pub fn deliver_modified_frame(
    payload: &[u8],
    tag_bits_applied: bool,
    wep_key: Option<&[u8]>,
    ap_modified: bool,
) -> HitchhikeDelivery {
    // Build the on-air body: [payload ‖ FCS], optionally WEP-wrapped.
    let (mut body, protected) = match wep_key {
        Some(key) => {
            let mut pt = payload.to_vec();
            pt.extend_from_slice(&crc32(payload).to_le_bytes()); // ICV
            let mut seed = vec![0u8, 0, 0];
            seed.extend_from_slice(key);
            Rc4::new(&seed).apply(&mut pt);
            (pt, true)
        }
        None => (payload.to_vec(), false),
    };
    let fcs = crc32(&body);

    if tag_bits_applied {
        // The tag flipped payload bits on the *backscattered copy*.
        body[0] ^= 0xFF;
    }

    // Unmodified APs check the FCS first.
    if crc32(&body) != fcs && !ap_modified {
        return HitchhikeDelivery::DroppedByFcs;
    }
    if protected {
        // Decrypt and verify ICV.
        let mut seed = vec![0u8, 0, 0];
        seed.extend_from_slice(wep_key.unwrap());
        let mut pt = body.clone();
        Rc4::new(&seed).apply(&mut pt);
        let (data, icv) = pt.split_at(pt.len() - 4);
        let expect = u32::from_le_bytes([icv[0], icv[1], icv[2], icv[3]]);
        if crc32(data) != expect {
            return HitchhikeDelivery::RejectedByCrypto;
        }
    }
    HitchhikeDelivery::RecoveredWithModifiedAp
}

/// End-to-end HitchHike exchange over clean channels: returns the tag
/// bits the host recovers.
pub fn hitchhike_exchange(data_bits: &[u8], tag_bits: &[u8], rng: &mut Rng, noise_std: f64) -> Vec<u8> {
    let chips = spread(data_bits);
    let shifted = codeword_translate(&chips, tag_bits);
    // AWGN on both receptions.
    let noisy = |cs: &[Complex64], rng: &mut Rng| -> Vec<Complex64> {
        cs.iter()
            .map(|&c| c + c64(rng.gaussian() * noise_std, rng.gaussian() * noise_std))
            .collect()
    };
    let original_rx = despread(&noisy(&chips, rng));
    let shifted_rx = despread(&noisy(&shifted, rng));
    recover_tag_bits(&original_rx, &shifted_rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barker_autocorrelation_peak() {
        let main: i32 = BARKER11.iter().map(|&c| (c as i32) * (c as i32)).sum();
        assert_eq!(main, 11);
        // Sidelobes of the aperiodic autocorrelation are ≤ 1 in magnitude.
        for shift in 1..11usize {
            let side: i32 = (0..11 - shift)
                .map(|i| BARKER11[i] as i32 * BARKER11[i + shift] as i32)
                .sum();
            assert!(side.abs() <= 1, "sidelobe {side} at shift {shift}");
        }
    }

    #[test]
    fn spread_despread_roundtrip() {
        let bits = vec![0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0];
        assert_eq!(despread(&spread(&bits)), bits);
    }

    #[test]
    fn translation_xors_tag_bits() {
        let data = vec![0, 1, 0, 0, 1, 1, 0, 1];
        let tag = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let mut rng = Rng::seed_from_u64(1);
        let recovered = hitchhike_exchange(&data, &tag, &mut rng, 0.0);
        assert_eq!(recovered, tag);
    }

    #[test]
    fn exchange_survives_moderate_noise() {
        let mut rng = Rng::seed_from_u64(2);
        let data: Vec<u8> = (0..200).map(|_| (rng.next_u64() & 1) as u8).collect();
        let tag: Vec<u8> = (0..200).map(|_| (rng.next_u64() & 1) as u8).collect();
        // Barker processing gain (~10.4 dB) rides out chip-level noise;
        // each symbol error can smear into two bits (differential
        // decoding), so allow a small handful.
        let recovered = hitchhike_exchange(&data, &tag, &mut rng, 0.5);
        let errors = recovered.iter().zip(tag.iter()).filter(|(a, b)| a != b).count();
        assert!(errors <= 4, "{errors} errors under moderate noise");
    }

    #[test]
    fn unmodified_ap_drops_translated_frames() {
        assert_eq!(
            deliver_modified_frame(b"payload bytes", true, None, false),
            HitchhikeDelivery::DroppedByFcs
        );
    }

    #[test]
    fn modified_ap_accepts_on_open_network() {
        assert_eq!(
            deliver_modified_frame(b"payload bytes", true, None, true),
            HitchhikeDelivery::RecoveredWithModifiedAp
        );
    }

    #[test]
    fn wep_network_rejects_even_with_modified_ap() {
        // The §2 incompatibility: after the tag flips ciphertext bits, the
        // ICV no longer verifies — no AP modification can fix that.
        assert_eq!(
            deliver_modified_frame(b"payload bytes", true, Some(b"ABCDE"), true),
            HitchhikeDelivery::RejectedByCrypto
        );
    }

    #[test]
    fn untouched_frames_pass_everywhere() {
        assert_eq!(
            deliver_modified_frame(b"payload", false, None, false),
            HitchhikeDelivery::RecoveredWithModifiedAp
        );
        assert_eq!(
            deliver_modified_frame(b"payload", false, Some(b"ABCDE"), false),
            HitchhikeDelivery::RecoveredWithModifiedAp
        );
    }
}
