//! The requirements matrix (paper §1's checklist × §2's related work),
//! rendered from the system profiles so the REQS experiment regenerates
//! the comparison from code.

use crate::systems::{all_systems, SystemProfile};

/// Column labels, matching the paper's §1 requirement list.
pub const REQUIREMENT_NAMES: [&str; 4] = [
    "WiFi-compatible (11n/ac, no mods)",
    "Works with encryption",
    "Low-power (uW-class clock)",
    "Non-interfering",
];

/// One rendered matrix row.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// System name and venue.
    pub system: String,
    /// One flag per requirement.
    pub met: [bool; 4],
    /// Tag clock power (µW) for the power column.
    pub clock_power_uw: f64,
    /// Published throughput, for context (bps).
    pub throughput_bps: (f64, f64),
}

/// Build the matrix for all systems.
pub fn build_matrix() -> Vec<MatrixRow> {
    all_systems().iter().map(row_for).collect()
}

fn row_for(s: &SystemProfile) -> MatrixRow {
    MatrixRow {
        system: format!("{} ({})", s.name, s.venue),
        met: s.requirements(),
        clock_power_uw: s.oscillator.power_uw(),
        throughput_bps: s.throughput_bps,
    }
}

/// Render the matrix as an aligned text table (what the REQS binary
/// prints).
pub fn render_matrix() -> String {
    let rows = build_matrix();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:^10} {:^10} {:^10} {:^10} {:>12} {:>18}\n",
        "System", "WiFi", "Encrypt", "Low-pwr", "No-intf", "clock (uW)", "throughput"
    ));
    for r in &rows {
        let mark = |b: bool| if b { "yes" } else { "-" };
        let (lo, hi) = r.throughput_bps;
        out.push_str(&format!(
            "{:<28} {:^10} {:^10} {:^10} {:^10} {:>12.1} {:>8.0}-{:.0} Kbps\n",
            r.system,
            mark(r.met[0]),
            mark(r.met[1]),
            mark(r.met[2]),
            mark(r.met[3]),
            r.clock_power_uw,
            lo / 1e3,
            hi / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_all_systems() {
        let rows = build_matrix();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.system.starts_with("WiTAG")));
        assert!(rows.iter().any(|r| r.system.starts_with("HitchHike")));
    }

    #[test]
    fn rendered_table_is_complete() {
        let table = render_matrix();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 8, "header + 7 systems");
        for name in ["WiTAG", "HitchHike", "FreeRider", "MOXcatter", "BackFi"] {
            assert!(table.contains(name), "missing {name}");
        }
    }

    #[test]
    fn witag_row_is_all_yes() {
        let rows = build_matrix();
        let witag = rows.iter().find(|r| r.system.starts_with("WiTAG")).unwrap();
        assert_eq!(witag.met, [true; 4]);
    }
}
