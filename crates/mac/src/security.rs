//! Link-layer security bindings: open, WEP, or WPA2 (CCMP) networks.
//!
//! WiTAG's headline compatibility claim (paper §1, §4) is that the tag
//! never reads or rewrites frame contents, so encryption is irrelevant to
//! it. This module is what makes that claim testable end-to-end: MPDUs on
//! a protected network have their payloads encrypted/decrypted here, and
//! the integration tests drive identical tag traffic over all three modes.

use crate::header::MacHeader;
use witag_crypto::{CcmpError, CcmpKey, WepError, WepKey};

/// Per-link security configuration and state.
pub enum Security {
    /// Open network — payloads in the clear.
    Open,
    /// WEP (RC4 + CRC-32 ICV).
    Wep(WepKey),
    /// WPA2 data protection (AES-CCMP).
    Wpa2(Box<CcmpKey>),
}

impl core::fmt::Debug for Security {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Security::Open => write!(f, "Security::Open"),
            Security::Wep(_) => write!(f, "Security::Wep"),
            Security::Wpa2(_) => write!(f, "Security::Wpa2"),
        }
    }
}

/// Payload protection errors surfaced to the MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityError {
    /// CCMP failure (MIC, replay, truncation).
    Ccmp(CcmpError),
    /// WEP failure (ICV, truncation).
    Wep(WepError),
}

impl core::fmt::Display for SecurityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SecurityError::Ccmp(e) => write!(f, "CCMP: {e}"),
            SecurityError::Wep(e) => write!(f, "WEP: {e}"),
        }
    }
}

impl std::error::Error for SecurityError {}

impl Security {
    /// `true` if MPDUs should set the Protected Frame bit.
    pub fn is_protected(&self) -> bool {
        !matches!(self, Security::Open)
    }

    /// Protect a plaintext payload for the given header.
    pub fn encrypt(&mut self, header: &MacHeader, plaintext: &[u8]) -> Vec<u8> {
        match self {
            Security::Open => plaintext.to_vec(),
            Security::Wep(key) => key.encrypt(plaintext),
            Security::Wpa2(key) => {
                let hdr_bytes = header.to_bytes();
                key.encrypt(&hdr_bytes, &header.addr2.0, header.tid, plaintext)
            }
        }
    }

    /// Recover the plaintext payload of a received MPDU.
    pub fn decrypt(&mut self, header: &MacHeader, payload: &[u8]) -> Result<Vec<u8>, SecurityError> {
        match self {
            Security::Open => Ok(payload.to_vec()),
            Security::Wep(key) => key.decrypt(payload).map_err(SecurityError::Wep),
            Security::Wpa2(key) => {
                let hdr_bytes = header.to_bytes();
                key.decrypt(&hdr_bytes, &header.addr2.0, header.tid, payload)
                    .map_err(SecurityError::Ccmp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Addr, FrameKind, MacHeader};

    fn header(protected: bool) -> MacHeader {
        let mut h = MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), 5);
        h.kind = FrameKind::QosData;
        h.protected = protected;
        h
    }

    #[test]
    fn open_passthrough() {
        let mut sec = Security::Open;
        let h = header(false);
        let ct = sec.encrypt(&h, b"hello");
        assert_eq!(ct, b"hello");
        assert_eq!(sec.decrypt(&h, &ct).unwrap(), b"hello");
        assert!(!sec.is_protected());
    }

    #[test]
    fn wep_roundtrip() {
        let mut tx = Security::Wep(WepKey::new(b"ABCDE"));
        let mut rx = Security::Wep(WepKey::new(b"ABCDE"));
        let h = header(true);
        let ct = sec_roundtrip(&mut tx, &mut rx, &h, b"sensor payload");
        assert_ne!(ct, b"sensor payload".to_vec());
        assert!(tx.is_protected());
    }

    #[test]
    fn wpa2_roundtrip() {
        let mut tx = Security::Wpa2(Box::new(CcmpKey::new(&[9u8; 16])));
        let mut rx = Security::Wpa2(Box::new(CcmpKey::new(&[9u8; 16])));
        let h = header(true);
        let ct = sec_roundtrip(&mut tx, &mut rx, &h, b"sensor payload");
        assert_ne!(ct, b"sensor payload".to_vec());
    }

    /// Encrypt with `tx`, decrypt with `rx`, assert plaintext recovered;
    /// returns the ciphertext.
    fn sec_roundtrip(
        tx: &mut Security,
        rx: &mut Security,
        h: &MacHeader,
        pt: &[u8],
    ) -> Vec<u8> {
        let ct = tx.encrypt(h, pt);
        assert_eq!(rx.decrypt(h, &ct).unwrap(), pt);
        ct
    }

    #[test]
    fn wpa2_tamper_detected() {
        let mut tx = Security::Wpa2(Box::new(CcmpKey::new(&[9u8; 16])));
        let mut rx = Security::Wpa2(Box::new(CcmpKey::new(&[9u8; 16])));
        let h = header(true);
        let mut ct = tx.encrypt(&h, b"data");
        ct[9] ^= 0x80;
        assert!(matches!(
            rx.decrypt(&h, &ct),
            Err(SecurityError::Ccmp(CcmpError::MicMismatch))
        ));
    }

    #[test]
    fn wep_tamper_detected() {
        let mut tx = Security::Wep(WepKey::new(b"ABCDE"));
        let mut rx = Security::Wep(WepKey::new(b"ABCDE"));
        let h = header(true);
        let mut ct = tx.encrypt(&h, b"data");
        let n = ct.len();
        ct[n - 1] ^= 0x01;
        assert!(matches!(
            rx.decrypt(&h, &ct),
            Err(SecurityError::Wep(WepError::IcvMismatch))
        ));
    }
}
