//! DCF/EDCA channel access timing.
//!
//! WiTAG's throughput is bounded by how fast query exchanges can be run:
//!
//! ```text
//! [DIFS][backoff][A-MPDU][SIFS][block ACK]  …repeat
//! ```
//!
//! This module produces exchange durations — with random backoff drawn
//! from the contention window — and implements binary exponential backoff
//! for retries. It is an airtime model, not a full CSMA state machine:
//! the reproduction's experiments run a single saturated querier (like
//! the paper's), so inter-station collision dynamics reduce to the
//! configured interference process in `witag-channel`.

use witag_phy::airtime::{block_ack_airtime, LegacyRate};
use witag_phy::params::timing;
use witag_phy::ppdu::PhyConfig;
use witag_sim::rng::Rng;
use witag_sim::time::Duration;

/// Contention/backoff state for one station.
#[derive(Debug, Clone)]
pub struct Contention {
    cw: u32,
}

impl Default for Contention {
    fn default() -> Self {
        Self::new()
    }
}

impl Contention {
    /// Fresh state at CWmin.
    pub fn new() -> Self {
        Contention { cw: timing::CW_MIN }
    }

    /// Current contention window (slots).
    pub fn window(&self) -> u32 {
        self.cw
    }

    /// Draw a backoff duration for a new transmission attempt.
    pub fn draw_backoff(&self, rng: &mut Rng) -> Duration {
        let slots = rng.below(self.cw as u64 + 1);
        timing::SLOT * slots
    }

    /// Record a failed exchange: double the window up to CWmax.
    pub fn on_failure(&mut self) {
        self.cw = ((self.cw + 1) * 2 - 1).min(timing::CW_MAX);
    }

    /// Record a successful exchange: reset to CWmin.
    pub fn on_success(&mut self) {
        self.cw = timing::CW_MIN;
    }
}

/// Timing breakdown of one query exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeTiming {
    /// DIFS + random backoff.
    pub contention: Duration,
    /// A-MPDU PPDU airtime.
    pub ampdu: Duration,
    /// SIFS before the block ACK.
    pub sifs: Duration,
    /// Block ACK airtime (legacy rate).
    pub block_ack: Duration,
}

impl ExchangeTiming {
    /// Total exchange duration.
    pub fn total(&self) -> Duration {
        self.contention + self.ampdu + self.sifs + self.block_ack
    }
}

/// Compute the timing of one `A-MPDU → block ACK` exchange.
pub fn exchange_timing(
    phy: &PhyConfig,
    psdu_len: usize,
    contention: &Contention,
    ba_rate: LegacyRate,
    rng: &mut Rng,
) -> ExchangeTiming {
    ExchangeTiming {
        contention: timing::DIFS + contention.draw_backoff(rng),
        ampdu: phy.airtime(psdu_len),
        sifs: timing::SIFS,
        block_ack: block_ack_airtime(ba_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witag_phy::mcs::Mcs;

    #[test]
    fn backoff_within_window() {
        let mut rng = Rng::seed_from_u64(1);
        let c = Contention::new();
        for _ in 0..200 {
            let b = c.draw_backoff(&mut rng);
            assert!(b <= timing::SLOT * timing::CW_MIN as u64);
            assert_eq!(b.as_nanos() % timing::SLOT.as_nanos(), 0);
        }
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let mut c = Contention::new();
        assert_eq!(c.window(), 15);
        c.on_failure();
        assert_eq!(c.window(), 31);
        c.on_failure();
        assert_eq!(c.window(), 63);
        for _ in 0..10 {
            c.on_failure();
        }
        assert_eq!(c.window(), timing::CW_MAX);
        c.on_success();
        assert_eq!(c.window(), timing::CW_MIN);
    }

    #[test]
    fn exchange_total_adds_up() {
        let mut rng = Rng::seed_from_u64(2);
        let phy = PhyConfig::new(Mcs::ht(7));
        let t = exchange_timing(&phy, 2048, &Contention::new(), LegacyRate::M24, &mut rng);
        assert_eq!(
            t.total(),
            t.contention + t.ampdu + t.sifs + t.block_ack
        );
        assert!(t.ampdu >= phy.preamble_duration());
        assert_eq!(t.sifs, timing::SIFS);
        assert_eq!(t.block_ack, Duration::micros(32));
    }

    #[test]
    fn bigger_psdu_longer_exchange() {
        let mut rng = Rng::seed_from_u64(3);
        let phy = PhyConfig::new(Mcs::ht(7));
        let c = Contention::new();
        let t1 = exchange_timing(&phy, 500, &c, LegacyRate::M24, &mut rng);
        let t2 = exchange_timing(&phy, 5000, &c, LegacyRate::M24, &mut rng);
        assert!(t2.ampdu > t1.ampdu);
    }
}
