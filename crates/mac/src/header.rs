//! 802.11 MAC header wire format.
//!
//! Implements the subset of the frame format the reproduction needs: QoS
//! data frames (what query A-MPDUs are made of) and the control-frame
//! fields shared with block ACKs. Parse/emit is smoltcp-style: explicit
//! byte layout, validation on parse, no silent truncation.

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Addr(pub [u8; 6]);

impl Addr {
    /// The broadcast address FF:FF:FF:FF:FF:FF.
    pub const BROADCAST: Addr = Addr([0xFF; 6]);

    /// A locally administered address derived from a small id (handy for
    /// tests and simulations).
    pub const fn local(id: u8) -> Addr {
        Addr([0x02, 0x00, 0x00, 0x00, 0x00, id])
    }
}

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Frame type/subtype combinations used by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// QoS data frame (type 2, subtype 8).
    QosData,
    /// QoS null frame (type 2, subtype 12) — header-only, the minimal
    /// subframe WiTAG queries are built from (paper §4.1).
    QosNull,
    /// Block ACK request (type 1, subtype 8).
    BlockAckReq,
    /// Block ACK (type 1, subtype 9).
    BlockAck,
}

impl FrameKind {
    /// (type, subtype) pair.
    const fn type_subtype(self) -> (u8, u8) {
        match self {
            FrameKind::QosData => (2, 8),
            FrameKind::QosNull => (2, 12),
            FrameKind::BlockAckReq => (1, 8),
            FrameKind::BlockAck => (1, 9),
        }
    }

    fn from_type_subtype(ty: u8, subtype: u8) -> Option<FrameKind> {
        match (ty, subtype) {
            (2, 8) => Some(FrameKind::QosData),
            (2, 12) => Some(FrameKind::QosNull),
            (1, 8) => Some(FrameKind::BlockAckReq),
            (1, 9) => Some(FrameKind::BlockAck),
            _ => None,
        }
    }
}

/// Length of a QoS data/null MAC header: 24 base + 2 QoS control.
pub const QOS_HEADER_LEN: usize = 26;

/// A QoS data/null MAC header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacHeader {
    /// Frame kind (encoded into frame control).
    pub kind: FrameKind,
    /// `true` if the Protected Frame bit is set (payload is CCMP/WEP).
    pub protected: bool,
    /// Duration/ID field (µs).
    pub duration: u16,
    /// Receiver address.
    pub addr1: Addr,
    /// Transmitter address.
    pub addr2: Addr,
    /// BSSID / destination.
    pub addr3: Addr,
    /// Sequence number (0..4096); fragment number fixed at 0.
    pub seq: u16,
    /// QoS TID (0..16).
    pub tid: u8,
}

/// Errors from parsing MAC frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacParseError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Unknown or unsupported type/subtype.
    UnsupportedKind,
    /// Header field holds an out-of-range value.
    FieldRange,
}

impl core::fmt::Display for MacParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MacParseError::Truncated => write!(f, "frame truncated"),
            MacParseError::UnsupportedKind => write!(f, "unsupported frame type/subtype"),
            MacParseError::FieldRange => write!(f, "header field out of range"),
        }
    }
}

impl std::error::Error for MacParseError {}

impl MacHeader {
    /// Build a QoS-null header — a query subframe's entire contents.
    pub fn qos_null(addr1: Addr, addr2: Addr, addr3: Addr, seq: u16) -> Self {
        MacHeader {
            kind: FrameKind::QosNull,
            protected: false,
            duration: 0,
            addr1,
            addr2,
            addr3,
            seq,
            tid: 0,
        }
    }

    /// Serialise to the 26-byte wire form.
    pub fn to_bytes(&self) -> [u8; QOS_HEADER_LEN] {
        assert!(self.seq < 4096, "sequence number is 12 bits");
        assert!(self.tid < 16, "TID is 4 bits");
        let (ty, subtype) = self.kind.type_subtype();
        let mut fc: u16 = ((ty as u16) << 2) | ((subtype as u16) << 4);
        if self.protected {
            fc |= 1 << 14;
        }
        let mut out = [0u8; QOS_HEADER_LEN];
        out[0..2].copy_from_slice(&fc.to_le_bytes());
        out[2..4].copy_from_slice(&self.duration.to_le_bytes());
        out[4..10].copy_from_slice(&self.addr1.0);
        out[10..16].copy_from_slice(&self.addr2.0);
        out[16..22].copy_from_slice(&self.addr3.0);
        out[22..24].copy_from_slice(&(self.seq << 4).to_le_bytes());
        out[24..26].copy_from_slice(&(self.tid as u16).to_le_bytes());
        out
    }

    /// Parse the 26-byte wire form.
    pub fn from_bytes(buf: &[u8]) -> Result<MacHeader, MacParseError> {
        if buf.len() < QOS_HEADER_LEN {
            return Err(MacParseError::Truncated);
        }
        let fc = u16::from_le_bytes([buf[0], buf[1]]);
        let version = fc & 0b11;
        if version != 0 {
            return Err(MacParseError::FieldRange);
        }
        let ty = ((fc >> 2) & 0b11) as u8;
        let subtype = ((fc >> 4) & 0b1111) as u8;
        let kind =
            FrameKind::from_type_subtype(ty, subtype).ok_or(MacParseError::UnsupportedKind)?;
        let protected = fc & (1 << 14) != 0;
        let duration = u16::from_le_bytes([buf[2], buf[3]]);
        let addr = |o: usize| {
            let mut a = [0u8; 6];
            a.copy_from_slice(&buf[o..o + 6]);
            Addr(a)
        };
        let addr1 = addr(4);
        let addr2 = addr(10);
        let addr3 = addr(16);
        let seq_ctl = u16::from_le_bytes([buf[22], buf[23]]);
        let qos = u16::from_le_bytes([buf[24], buf[25]]);
        Ok(MacHeader {
            kind,
            protected,
            duration,
            addr1,
            addr2,
            addr3,
            seq: seq_ctl >> 4,
            tid: (qos & 0xF) as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MacHeader {
        MacHeader {
            kind: FrameKind::QosData,
            protected: true,
            duration: 44,
            addr1: Addr::local(1),
            addr2: Addr::local(2),
            addr3: Addr::local(3),
            seq: 1234,
            tid: 5,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.to_bytes();
        assert_eq!(MacHeader::from_bytes(&bytes).unwrap(), h);
    }

    #[test]
    fn qos_null_roundtrip() {
        let h = MacHeader::qos_null(Addr::local(9), Addr::local(8), Addr::local(9), 4095);
        let parsed = MacHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed.kind, FrameKind::QosNull);
        assert_eq!(parsed.seq, 4095);
        assert!(!parsed.protected);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            MacHeader::from_bytes(&[0u8; 10]),
            Err(MacParseError::Truncated)
        );
    }

    #[test]
    fn unknown_subtype_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0xF0 | 0x0C; // type 3 (reserved)
        assert_eq!(
            MacHeader::from_bytes(&bytes),
            Err(MacParseError::UnsupportedKind)
        );
    }

    #[test]
    fn nonzero_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] |= 0b01;
        assert_eq!(MacHeader::from_bytes(&bytes), Err(MacParseError::FieldRange));
    }

    #[test]
    fn protected_bit_carried() {
        let mut h = sample();
        h.protected = false;
        let parsed = MacHeader::from_bytes(&h.to_bytes()).unwrap();
        assert!(!parsed.protected);
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::local(0x2A).to_string(), "02:00:00:00:00:2a");
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn oversized_seq_panics() {
        let mut h = sample();
        h.seq = 4096;
        let _ = h.to_bytes();
    }
}
