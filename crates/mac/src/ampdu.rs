//! MPDUs and A-MPDU aggregation (IEEE 802.11-2016 §9.7).
//!
//! An A-MPDU is a train of `[delimiter ‖ MPDU ‖ pad]` subframes packed
//! into one PSDU. Each 4-byte delimiter carries the MPDU length, a CRC-8
//! over its own fields, and the signature byte 0x4E ('N'): together these
//! let a receiver *re-synchronise* after a corrupted subframe by scanning
//! forward for the next valid delimiter — which is exactly what makes
//! WiTAG work: one corrupted subframe is reported as missing in the block
//! ACK while its neighbours still deliver.
//!
//! The parser here implements that scan-forward recovery, and the
//! aggregation API reports each subframe's byte extent within the PSDU —
//! the geometry the tag's corruption schedule is built from.

use crate::header::{MacHeader, QOS_HEADER_LEN};
use witag_crypto::{crc8, verify_fcs, with_fcs};

/// Delimiter signature byte ('N').
pub const DELIMITER_SIGNATURE: u8 = 0x4E;
/// Delimiter length in bytes.
pub const DELIMITER_LEN: usize = 4;
/// Maximum MPDU length representable in the delimiter (12 bits... HT uses
/// 12 bits plus 2 scale bits; the reproduction never needs more than 4095).
pub const MAX_MPDU_LEN: usize = 4095;

/// One MAC protocol data unit: header + (possibly encrypted) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mpdu {
    /// MAC header.
    pub header: MacHeader,
    /// Frame body (ciphertext if `header.protected`).
    pub payload: Vec<u8>,
}

impl Mpdu {
    /// Serialise to on-air bytes: header ‖ payload ‖ FCS.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(QOS_HEADER_LEN + self.payload.len());
        body.extend_from_slice(&self.header.to_bytes());
        body.extend_from_slice(&self.payload);
        with_fcs(&body)
    }

    /// Parse and FCS-verify an on-air MPDU.
    pub fn from_bytes(buf: &[u8]) -> Option<Mpdu> {
        let body = verify_fcs(buf)?;
        let header = MacHeader::from_bytes(body).ok()?;
        Some(Mpdu {
            header,
            payload: body[QOS_HEADER_LEN..].to_vec(),
        })
    }

    /// On-air length (header + payload + FCS).
    pub fn wire_len(&self) -> usize {
        QOS_HEADER_LEN + self.payload.len() + 4
    }
}

/// Build one 4-byte delimiter for an MPDU of `len` bytes.
pub fn delimiter(len: usize) -> [u8; DELIMITER_LEN] {
    assert!(len <= MAX_MPDU_LEN, "MPDU too long for delimiter");
    // Bits 4..16 carry the length (bits 0..4 EOF/reserved, kept zero).
    let field: u16 = (len as u16) << 4;
    let fb = field.to_le_bytes();
    [fb[0], fb[1], crc8(&fb), DELIMITER_SIGNATURE]
}

/// Check a delimiter; returns the MPDU length on success.
pub fn parse_delimiter(buf: &[u8]) -> Option<usize> {
    if buf.len() < DELIMITER_LEN {
        return None;
    }
    if buf[3] != DELIMITER_SIGNATURE || crc8(&buf[0..2]) != buf[2] {
        return None;
    }
    let field = u16::from_le_bytes([buf[0], buf[1]]);
    Some((field >> 4) as usize)
}

/// Byte extent of one subframe within the PSDU (delimiter + MPDU + pad).
/// Corrupting *any* byte in this range destroys the subframe as far as
/// the receiver is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubframeExtent {
    /// First PSDU byte of the subframe's delimiter.
    pub start: usize,
    /// One past the subframe's final byte (including pad).
    pub end: usize,
    /// First byte of the MPDU proper (after the delimiter).
    pub mpdu_start: usize,
    /// Length of the MPDU in bytes.
    pub mpdu_len: usize,
}

/// Aggregate MPDUs into a PSDU. Returns the PSDU bytes plus each
/// subframe's extent. Every subframe except the last is padded to a
/// 4-byte boundary (§9.7.3).
///
/// # Panics
/// Panics on an empty MPDU list or an oversized MPDU.
pub fn aggregate(mpdus: &[Mpdu]) -> (Vec<u8>, Vec<SubframeExtent>) {
    assert!(!mpdus.is_empty(), "A-MPDU needs at least one MPDU");
    let mut psdu = Vec::new();
    let mut extents = Vec::with_capacity(mpdus.len());
    for (i, mpdu) in mpdus.iter().enumerate() {
        let bytes = mpdu.to_bytes();
        let start = psdu.len();
        psdu.extend_from_slice(&delimiter(bytes.len()));
        let mpdu_start = psdu.len();
        psdu.extend_from_slice(&bytes);
        if i != mpdus.len() - 1 {
            while psdu.len() % 4 != 0 {
                psdu.push(0);
            }
        }
        extents.push(SubframeExtent {
            start,
            end: psdu.len(),
            mpdu_start,
            mpdu_len: bytes.len(),
        });
    }
    (psdu, extents)
}

/// Result of de-aggregating one subframe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubframeOutcome {
    /// The recovered MPDU, if its FCS verified.
    pub mpdu: Option<Mpdu>,
    /// Where in the PSDU the subframe was found.
    pub at: usize,
}

/// Walk a received PSDU, validating delimiters and FCS, recovering after
/// corruption by scanning forward (4-byte aligned) for the next valid
/// delimiter.
///
/// Returns one outcome per *found* subframe slot. A subframe whose
/// delimiter was destroyed entirely may be skipped (it simply goes
/// unacknowledged — the sender's block-ACK accounting treats it as lost,
/// and in WiTAG's encoding that is a `0`).
pub fn deaggregate(psdu: &[u8]) -> Vec<SubframeOutcome> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + DELIMITER_LEN <= psdu.len() {
        match parse_delimiter(&psdu[pos..]) {
            Some(len) if pos + DELIMITER_LEN + len <= psdu.len() && len >= QOS_HEADER_LEN + 4 => {
                let body = &psdu[pos + DELIMITER_LEN..pos + DELIMITER_LEN + len];
                out.push(SubframeOutcome {
                    mpdu: Mpdu::from_bytes(body),
                    at: pos,
                });
                pos += DELIMITER_LEN + len;
                while !pos.is_multiple_of(4) {
                    pos += 1;
                }
            }
            _ => {
                // Scan forward to the next 4-byte boundary and retry —
                // §9.7.3 receiver behaviour.
                pos = if pos.is_multiple_of(4) { pos + 4 } else { pos + (4 - pos % 4) };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::Addr;

    fn null_mpdu(seq: u16) -> Mpdu {
        Mpdu {
            header: MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq),
            payload: Vec::new(),
        }
    }

    fn data_mpdu(seq: u16, len: usize) -> Mpdu {
        let mut h = MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq);
        h.kind = crate::header::FrameKind::QosData;
        Mpdu {
            header: h,
            payload: vec![seq as u8; len],
        }
    }

    #[test]
    fn mpdu_roundtrip() {
        let m = data_mpdu(7, 100);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_len());
        assert_eq!(Mpdu::from_bytes(&bytes), Some(m));
    }

    #[test]
    fn corrupted_mpdu_fails_fcs() {
        let mut bytes = data_mpdu(7, 100).to_bytes();
        bytes[40] ^= 0x01;
        assert_eq!(Mpdu::from_bytes(&bytes), None);
    }

    #[test]
    fn delimiter_roundtrip() {
        for len in [30usize, 100, 1500, 4095] {
            assert_eq!(parse_delimiter(&delimiter(len)), Some(len));
        }
    }

    #[test]
    fn delimiter_rejects_bad_signature_and_crc() {
        let mut d = delimiter(64);
        d[3] = 0x00;
        assert_eq!(parse_delimiter(&d), None);
        let mut d = delimiter(64);
        d[0] ^= 0x10;
        assert_eq!(parse_delimiter(&d), None);
    }

    #[test]
    fn aggregate_deaggregate_roundtrip() {
        let mpdus: Vec<Mpdu> = (0..64).map(null_mpdu).collect();
        let (psdu, extents) = aggregate(&mpdus);
        assert_eq!(extents.len(), 64);
        // Extents tile the PSDU without overlap.
        for w in extents.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(extents.last().unwrap().end, psdu.len());

        let outcomes = deaggregate(&psdu);
        assert_eq!(outcomes.len(), 64);
        for (i, o) in outcomes.iter().enumerate() {
            let m = o.mpdu.as_ref().expect("clean PSDU must parse fully");
            assert_eq!(m.header.seq, i as u16);
        }
    }

    #[test]
    fn mixed_sizes_aggregate() {
        let mpdus = vec![data_mpdu(0, 13), null_mpdu(1), data_mpdu(2, 777), null_mpdu(3)];
        let (psdu, _) = aggregate(&mpdus);
        let outcomes = deaggregate(&psdu);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[2].mpdu.as_ref().unwrap().payload.len(), 777);
    }

    #[test]
    fn corrupting_one_subframe_spares_neighbours() {
        let mpdus: Vec<Mpdu> = (0..8).map(null_mpdu).collect();
        let (mut psdu, extents) = aggregate(&mpdus);
        // Smash subframe 3's MPDU body (not the delimiter).
        let e = extents[3];
        for b in &mut psdu[e.mpdu_start..e.mpdu_start + e.mpdu_len] {
            *b ^= 0xFF;
        }
        let outcomes = deaggregate(&psdu);
        assert_eq!(outcomes.len(), 8);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 3 {
                assert!(o.mpdu.is_none(), "subframe 3 must fail FCS");
            } else {
                assert!(o.mpdu.is_some(), "subframe {i} must survive");
            }
        }
    }

    #[test]
    fn destroyed_delimiter_recovers_at_next_subframe() {
        let mpdus: Vec<Mpdu> = (0..8).map(null_mpdu).collect();
        let (mut psdu, extents) = aggregate(&mpdus);
        // Destroy subframe 2 entirely, delimiter included.
        let e = extents[2];
        for b in &mut psdu[e.start..e.end] {
            *b = 0xAA;
        }
        let outcomes = deaggregate(&psdu);
        // Subframe 2 vanishes; 0,1 and 3..7 recovered.
        let seqs: Vec<u16> = outcomes
            .iter()
            .filter_map(|o| o.mpdu.as_ref().map(|m| m.header.seq))
            .collect();
        assert!(seqs.contains(&0) && seqs.contains(&1));
        for s in 3..8u16 {
            assert!(seqs.contains(&s), "subframe {s} must be recovered, got {seqs:?}");
        }
        assert!(!seqs.contains(&2));
    }

    #[test]
    fn empty_psdu_yields_nothing() {
        assert!(deaggregate(&[]).is_empty());
        assert!(deaggregate(&[0u8; 3]).is_empty());
    }

    #[test]
    fn garbage_psdu_yields_nothing_valid() {
        let garbage: Vec<u8> = (0..512).map(|i| (i * 37) as u8).collect();
        let outcomes = deaggregate(&garbage);
        assert!(outcomes.iter().all(|o| o.mpdu.is_none()));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_aggregate_panics() {
        let _ = aggregate(&[]);
    }
}
