//! Multi-station DCF (CSMA/CA) simulation.
//!
//! A slot-synchronous simulator of the 802.11 distributed coordination
//! function: n stations contend with binary-exponential backoff;
//! simultaneous countdown expiry is a collision (EIFS-like recovery),
//! single winners transmit `frame + SIFS + ACK`. This is the classic
//! Bianchi-model setting, built so the reproduction can answer a question
//! the paper waves at (§1 "Non-Interfering", §8): *a WiTAG querier is an
//! ordinary DCF station* — its query exchanges take a fair share of the
//! medium and nothing more, and its achievable query rate under
//! contention follows directly.
//!
//! Fidelity notes: perfect carrier sensing (no hidden terminals), no
//! capture effect, immediate ACKs; retry limits are not modelled (frames
//! retry until delivered) since saturated fairness and collision
//! probability — what the tests pin — do not depend on them.

use crate::access::Contention;
use witag_phy::params::timing;
use witag_sim::rng::Rng;
use witag_sim::time::{Duration, Instant};

/// One contending station.
#[derive(Debug, Clone)]
pub struct DcfStation {
    /// Airtime of this station's frames (data + SIFS + ACK).
    pub exchange_airtime: Duration,
    /// `None` = saturated (always has a frame); `Some(rate)` = Poisson
    /// arrivals at `rate` frames/s.
    pub arrival_rate: Option<f64>,
    contention: Contention,
    backoff_slots: Option<u64>,
    next_arrival: Option<Instant>,
    queued: usize,
    /// Completed exchanges.
    pub delivered: u64,
    /// Collisions participated in.
    pub collisions: u64,
    /// Airtime spent transmitting successfully.
    pub airtime_used: Duration,
}

impl DcfStation {
    /// A saturated station with the given exchange airtime.
    pub fn saturated(exchange_airtime: Duration) -> Self {
        DcfStation {
            exchange_airtime,
            arrival_rate: None,
            contention: Contention::new(),
            backoff_slots: None,
            next_arrival: None,
            queued: 1,
            delivered: 0,
            collisions: 0,
            airtime_used: Duration::ZERO,
        }
    }

    /// A station with Poisson traffic.
    pub fn poisson(exchange_airtime: Duration, rate: f64) -> Self {
        DcfStation {
            arrival_rate: Some(rate),
            queued: 0,
            ..DcfStation::saturated(exchange_airtime)
        }
    }

    fn has_frame(&self) -> bool {
        self.queued > 0 || self.arrival_rate.is_none()
    }
}

/// Result of a DCF simulation. Per-station counters stay in the
/// caller's `&mut [DcfStation]` — [`simulate`] borrows the stations
/// instead of consuming and returning them, so callers keep ownership
/// and nothing is cloned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfOutcome {
    /// Total simulated time.
    pub elapsed: Duration,
    /// Total collision events on the medium.
    pub collision_events: u64,
    /// Total successful transmissions.
    pub successes: u64,
    /// Station-side collision participations (each collision event
    /// counts once per involved station).
    pub collision_participations: u64,
}

impl DcfOutcome {
    /// Conditional collision probability: collided attempts / attempts.
    pub fn collision_probability(&self) -> f64 {
        let attempts = self.successes + self.collision_participations;
        if attempts == 0 {
            0.0
        } else {
            self.collision_participations as f64 / attempts as f64
        }
    }
}

/// A station's fraction of the total successful airtime after a
/// [`simulate`] run.
pub fn airtime_share(stations: &[DcfStation], idx: usize) -> f64 {
    let total: f64 = stations.iter().map(|s| s.airtime_used.as_secs_f64()).sum();
    match stations.get(idx) {
        Some(s) if total > 0.0 => s.airtime_used.as_secs_f64() / total,
        _ => 0.0,
    }
}

/// Run DCF with the given stations for `horizon` of simulated time,
/// accumulating per-station counters in place.
pub fn simulate(stations: &mut [DcfStation], horizon: Duration, seed: u64) -> DcfOutcome {
    assert!(!stations.is_empty());
    let mut rng = Rng::seed_from_u64(seed);
    let mut now = Instant::ZERO;
    let end = Instant::ZERO + horizon;
    let mut collision_events = 0u64;
    let mut successes = 0u64;
    let mut collision_participations = 0u64;

    // Initialise arrivals.
    for s in stations.iter_mut() {
        if let Some(rate) = s.arrival_rate {
            s.next_arrival = Some(now + Duration::from_secs_f64(rng.exponential(rate)));
        }
    }

    while now < end {
        // Deliver arrivals up to `now`.
        for s in stations.iter_mut() {
            if let (Some(rate), Some(t)) = (s.arrival_rate, s.next_arrival) {
                let mut t = t;
                while t <= now {
                    s.queued += 1;
                    t += Duration::from_secs_f64(rng.exponential(rate));
                }
                s.next_arrival = Some(t);
            }
        }

        // Stations with frames draw/hold backoff counters.
        let mut any_ready = false;
        for s in stations.iter_mut() {
            if s.has_frame() {
                any_ready = true;
                if s.backoff_slots.is_none() {
                    s.backoff_slots =
                        Some(s.contention.draw_backoff(&mut rng).as_nanos() / timing::SLOT.as_nanos());
                }
            }
        }
        if !any_ready {
            // Idle until the next arrival.
            let next = stations
                .iter()
                .filter_map(|s| s.next_arrival)
                .min()
                .unwrap_or(end);
            now = next.max(now + timing::SLOT);
            continue;
        }

        // Everyone waits DIFS, then counts down together.
        let min_slots = stations
            .iter()
            .filter(|s| s.has_frame())
            .filter_map(|s| s.backoff_slots)
            .min()
            .unwrap_or(0);
        now += timing::DIFS + timing::SLOT * min_slots;

        let winners: Vec<usize> = stations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.has_frame() && s.backoff_slots == Some(min_slots))
            .map(|(i, _)| i)
            .collect();
        for s in stations.iter_mut() {
            if let Some(b) = s.backoff_slots.as_mut() {
                *b -= min_slots.min(*b);
            }
        }

        if winners.len() == 1 {
            let w = &mut stations[winners[0]]; // lint:allow(panic_path) winners holds enumerate() indices of stations, len checked above
            now += w.exchange_airtime;
            w.delivered += 1;
            w.airtime_used += w.exchange_airtime;
            if w.arrival_rate.is_some() {
                w.queued -= 1;
            }
            w.contention.on_success();
            w.backoff_slots = None;
            successes += 1;
        } else {
            // Collision: medium busy for the longest involved frame; all
            // involved double their windows and redraw.
            collision_events += 1;
            // A collision involves ≥ 2 winners, so the maximum exists; the
            // fold makes that total without a panic path.
            let busy = winners
                .iter()
                .map(|&i| stations[i].exchange_airtime)
                .fold(Duration::ZERO, Duration::max);
            now += busy;
            for &i in &winners {
                let s = &mut stations[i];
                s.collisions += 1;
                collision_participations += 1;
                s.contention.on_failure();
                s.backoff_slots = None;
            }
        }
    }

    DcfOutcome {
        elapsed: now - Instant::ZERO,
        collision_events,
        successes,
        collision_participations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: Duration = Duration::micros(1500);

    #[test]
    fn single_station_never_collides() {
        let mut stations = vec![DcfStation::saturated(FRAME)];
        let out = simulate(&mut stations, Duration::secs(1), 1);
        assert_eq!(out.collision_events, 0);
        assert!(stations[0].delivered > 400, "got {}", stations[0].delivered);
    }

    #[test]
    fn saturated_stations_share_fairly() {
        let n = 4;
        let mut stations = vec![DcfStation::saturated(FRAME); n];
        simulate(&mut stations, Duration::secs(4), 2);
        for i in 0..n {
            let share = airtime_share(&stations, i);
            assert!(
                (share - 1.0 / n as f64).abs() < 0.05,
                "station {i} share {share}"
            );
        }
    }

    #[test]
    fn collision_probability_grows_with_population() {
        let p = |n: usize| {
            let mut stations = vec![DcfStation::saturated(FRAME); n];
            simulate(&mut stations, Duration::secs(2), 3).collision_probability()
        };
        let p2 = p(2);
        let p8 = p(8);
        assert!(p8 > p2, "collisions must grow: {p2} -> {p8}");
        assert!(p2 > 0.0 && p8 < 0.6);
    }

    #[test]
    fn collision_probability_matches_station_counters() {
        let mut stations = vec![DcfStation::saturated(FRAME); 4];
        let out = simulate(&mut stations, Duration::secs(2), 7);
        let per_station: u64 = stations.iter().map(|s| s.collisions).sum();
        assert_eq!(out.collision_participations, per_station);
        assert!(out.collision_participations >= 2 * out.collision_events);
    }

    #[test]
    fn aggregate_throughput_degrades_gracefully() {
        let total = |n: usize| {
            let mut stations = vec![DcfStation::saturated(FRAME); n];
            simulate(&mut stations, Duration::secs(2), 4).successes
        };
        let t1 = total(1);
        let t8 = total(8);
        // More stations = more collisions + more contention overhead, but
        // DCF keeps aggregate within a sane band.
        assert!(t8 as f64 > 0.5 * t1 as f64, "{t8} vs {t1}");
        assert!((t8 as f64) < 1.1 * t1 as f64);
    }

    #[test]
    fn poisson_station_keeps_up_under_light_load() {
        // One light sensor-style station among saturated bullies still
        // gets every frame through (queue does not blow up).
        let mut stations = vec![DcfStation::saturated(FRAME); 2];
        stations.push(DcfStation::poisson(Duration::micros(300), 50.0));
        simulate(&mut stations, Duration::secs(4), 5);
        let sensor = &stations[2];
        // ~200 arrivals in 4 s.
        assert!(
            sensor.delivered >= 150,
            "sensor delivered only {}",
            sensor.delivered
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut sa = vec![DcfStation::saturated(FRAME); 3];
        let mut sb = vec![DcfStation::saturated(FRAME); 3];
        let a = simulate(&mut sa, Duration::secs(1), 9);
        let b = simulate(&mut sb, Duration::secs(1), 9);
        assert_eq!(a, b);
    }
}
