//! # witag-mac — 802.11n/ac MAC-layer substrate
//!
//! Wire formats and timing for the MAC features WiTAG is built on:
//!
//! * [`header`] — QoS data/null MAC headers (parse/emit with validation),
//! * [`ampdu`] — MPDUs with FCS, A-MPDU delimiters with CRC-8 + signature,
//!   aggregation with subframe byte extents, and a de-aggregator that
//!   re-synchronises past corrupted subframes,
//! * [`blockack`] — compressed block ACK frames: the 64-bit bitmap WiTAG
//!   reads its tag data from,
//! * [`access`] — DIFS/SIFS/backoff exchange timing and binary
//!   exponential backoff,
//! * [`dcf`] — a slot-synchronous multi-station CSMA/CA simulator
//!   (Bianchi setting): fairness, collisions, and the query rate a
//!   WiTAG client can sustain as an ordinary DCF citizen,
//! * [`security`] — open / WEP / WPA2-CCMP payload protection, so the
//!   "works with encryption" claim is exercised end-to-end.
//!
//! The crate deliberately models an *unmodified* MAC: nothing in here
//! knows about tags. The WiTAG protocol (crate `witag`) composes these
//! standard behaviours.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

pub mod access;
pub mod ampdu;
pub mod dcf;
pub mod blockack;
pub mod header;
pub mod security;

pub use access::{exchange_timing, Contention, ExchangeTiming};
pub use dcf::{airtime_share, simulate as simulate_dcf, DcfOutcome, DcfStation};
pub use ampdu::{aggregate, deaggregate, Mpdu, SubframeExtent, SubframeOutcome};
pub use blockack::BlockAck;
pub use header::{Addr, FrameKind, MacHeader, MacParseError};
pub use security::{Security, SecurityError};
