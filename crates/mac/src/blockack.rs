//! Compressed block ACK frames (IEEE 802.11-2016 §9.3.1.9).
//!
//! The block ACK's 64-bit bitmap is WiTAG's downlink: bit `i` is 1 iff the
//! MPDU with sequence number `ssn + i` arrived with a valid FCS. The AP
//! emits this frame as a matter of standard MAC operation; the client
//! reads the tag's data straight out of it (paper §4, step 2). Neither
//! device knows a tag exists.

use crate::ampdu::SubframeOutcome;
use crate::header::Addr;
use witag_crypto::{verify_fcs, with_fcs};

/// Compressed block ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAck {
    /// Receiver address (the original A-MPDU's transmitter).
    pub ra: Addr,
    /// Transmitter address (the AP sending the BA).
    pub ta: Addr,
    /// TID the BA covers.
    pub tid: u8,
    /// Starting sequence number of the bitmap window.
    pub ssn: u16,
    /// Bit `i` set ⇔ MPDU `ssn + i` received correctly.
    pub bitmap: u64,
}

/// Wire length: FC(2) dur(2) RA(6) TA(6) BA-ctl(2) SSC(2) bitmap(8) FCS(4).
pub const BLOCK_ACK_WIRE_LEN: usize = 32;

impl BlockAck {
    /// Build a block ACK from de-aggregation outcomes: sets bit
    /// `seq − ssn` for every subframe whose MPDU FCS verified.
    ///
    /// Outcomes whose sequence number falls outside the 64-frame window
    /// are ignored (out-of-window frames are unacknowledged, as per the
    /// standard).
    pub fn from_outcomes(ra: Addr, ta: Addr, tid: u8, ssn: u16, outcomes: &[SubframeOutcome]) -> Self {
        let mut bitmap = 0u64;
        for o in outcomes {
            if let Some(mpdu) = &o.mpdu {
                let offset = (mpdu.header.seq.wrapping_sub(ssn)) & 0x0FFF;
                if offset < 64 {
                    bitmap |= 1 << offset;
                }
            }
        }
        BlockAck {
            ra,
            ta,
            tid,
            ssn,
            bitmap,
        }
    }

    /// Extract the `n` tag bits the WiTAG client reads: bit `i` of the
    /// bitmap, in window order. (1 = subframe delivered = tag sent `1`;
    /// 0 = subframe missing = tag sent `0`.)
    pub fn tag_bits(&self, n: usize) -> Vec<u8> {
        assert!(n <= 64, "bitmap carries at most 64 bits");
        (0..n).map(|i| ((self.bitmap >> i) & 1) as u8).collect()
    }

    /// Number of acknowledged subframes.
    pub fn acked_count(&self) -> u32 {
        self.bitmap.count_ones()
    }

    /// The observability event describing this assembly: the bitmap is
    /// WiTAG's downlink, so tracing it closes the loop between what the
    /// channel corrupted and what the client will read. `round` is the
    /// simulation round stamp; `subframes` how many the query carried.
    pub fn assembly_event(&self, round: u64, subframes: usize) -> witag_obs::Event {
        witag_obs::Event::BlockAckAssembled {
            round,
            subframes: subframes as u32,
            acked: self.acked_count(),
            bitmap: self.bitmap,
        }
    }

    /// Serialise to on-air bytes (with FCS).
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.ssn < 4096 && self.tid < 16);
        let mut body = Vec::with_capacity(BLOCK_ACK_WIRE_LEN - 4);
        // Frame control: type 1 (control), subtype 9 (block ACK).
        let fc: u16 = (1 << 2) | (9 << 4);
        body.extend_from_slice(&fc.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // duration
        body.extend_from_slice(&self.ra.0);
        body.extend_from_slice(&self.ta.0);
        // BA control: compressed bitmap (bit 2), TID in bits 12..16.
        let ba_ctl: u16 = (1 << 2) | ((self.tid as u16) << 12);
        body.extend_from_slice(&ba_ctl.to_le_bytes());
        body.extend_from_slice(&(self.ssn << 4).to_le_bytes());
        body.extend_from_slice(&self.bitmap.to_le_bytes());
        with_fcs(&body)
    }

    /// Parse an on-air block ACK, verifying FCS and frame type.
    pub fn from_bytes(buf: &[u8]) -> Option<BlockAck> {
        let body = verify_fcs(buf)?;
        if body.len() != BLOCK_ACK_WIRE_LEN - 4 {
            return None;
        }
        let fc = u16::from_le_bytes([body[0], body[1]]);
        if fc & 0xFC != ((1 << 2) | (9 << 4)) {
            return None;
        }
        let addr = |o: usize| {
            let mut a = [0u8; 6];
            a.copy_from_slice(&body[o..o + 6]);
            Addr(a)
        };
        let ra = addr(4);
        let ta = addr(10);
        let ba_ctl = u16::from_le_bytes([body[16], body[17]]);
        let ssc = u16::from_le_bytes([body[18], body[19]]);
        let mut bm = [0u8; 8];
        bm.copy_from_slice(&body[20..28]);
        Some(BlockAck {
            ra,
            ta,
            tid: (ba_ctl >> 12) as u8,
            ssn: ssc >> 4,
            bitmap: u64::from_le_bytes(bm),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ampdu::{aggregate, deaggregate, Mpdu};
    use crate::header::MacHeader;

    fn outcomes_with_losses(losses: &[usize]) -> Vec<SubframeOutcome> {
        let mpdus: Vec<Mpdu> = (0..16)
            .map(|seq| Mpdu {
                header: MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq),
                payload: Vec::new(),
            })
            .collect();
        let (mut psdu, extents) = aggregate(&mpdus);
        for &l in losses {
            let e = extents[l];
            for b in &mut psdu[e.mpdu_start..e.mpdu_start + e.mpdu_len] {
                *b ^= 0x55;
            }
        }
        deaggregate(&psdu)
    }

    #[test]
    fn bitmap_reflects_losses() {
        let ba = BlockAck::from_outcomes(
            Addr::local(2),
            Addr::local(1),
            0,
            0,
            &outcomes_with_losses(&[2, 5, 11]),
        );
        assert_eq!(ba.acked_count(), 13);
        let bits = ba.tag_bits(16);
        for (i, &b) in bits.iter().enumerate() {
            let expect = if [2usize, 5, 11].contains(&i) { 0 } else { 1 };
            assert_eq!(b, expect, "bit {i}");
        }
    }

    #[test]
    fn wire_roundtrip() {
        let ba = BlockAck {
            ra: Addr::local(7),
            ta: Addr::local(8),
            tid: 3,
            ssn: 100,
            bitmap: 0xDEAD_BEEF_0BAD_F00D,
        };
        let bytes = ba.to_bytes();
        assert_eq!(bytes.len(), BLOCK_ACK_WIRE_LEN);
        assert_eq!(BlockAck::from_bytes(&bytes), Some(ba));
    }

    #[test]
    fn corrupted_ba_rejected() {
        let ba = BlockAck {
            ra: Addr::local(7),
            ta: Addr::local(8),
            tid: 0,
            ssn: 0,
            bitmap: u64::MAX,
        };
        let mut bytes = ba.to_bytes();
        bytes[20] ^= 1;
        assert_eq!(BlockAck::from_bytes(&bytes), None);
    }

    #[test]
    fn nonzero_ssn_window() {
        let mpdus: Vec<Mpdu> = (100..108)
            .map(|seq| Mpdu {
                header: MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq),
                payload: Vec::new(),
            })
            .collect();
        let (psdu, _) = aggregate(&mpdus);
        let ba = BlockAck::from_outcomes(Addr::local(2), Addr::local(1), 0, 100, &deaggregate(&psdu));
        assert_eq!(ba.tag_bits(8), vec![1; 8]);
    }

    #[test]
    fn out_of_window_sequences_ignored() {
        let mpdus: Vec<Mpdu> = [0u16, 200]
            .iter()
            .map(|&seq| Mpdu {
                header: MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq),
                payload: Vec::new(),
            })
            .collect();
        let (psdu, _) = aggregate(&mpdus);
        let ba = BlockAck::from_outcomes(Addr::local(2), Addr::local(1), 0, 0, &deaggregate(&psdu));
        assert_eq!(ba.bitmap, 1, "only seq 0 falls inside the window");
    }

    #[test]
    fn tag_bits_cap() {
        let ba = BlockAck {
            ra: Addr::local(1),
            ta: Addr::local(2),
            tid: 0,
            ssn: 0,
            bitmap: u64::MAX,
        };
        assert_eq!(ba.tag_bits(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_tag_bits_panics() {
        let ba = BlockAck {
            ra: Addr::local(1),
            ta: Addr::local(2),
            tid: 0,
            ssn: 0,
            bitmap: 0,
        };
        let _ = ba.tag_bits(65);
    }
}
