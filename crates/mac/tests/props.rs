//! Property-based tests for the MAC: aggregation geometry, corruption
//! containment, block-ACK bitmap correctness — for arbitrary MPDU mixes
//! and arbitrary damage.

use proptest::prelude::*;
use witag_mac::ampdu::{aggregate, deaggregate, Mpdu};
use witag_mac::blockack::BlockAck;
use witag_mac::header::{Addr, FrameKind, MacHeader};

fn mpdu(seq: u16, payload_len: usize) -> Mpdu {
    let mut h = MacHeader::qos_null(Addr::local(1), Addr::local(2), Addr::local(1), seq % 4096);
    if payload_len > 0 {
        h.kind = FrameKind::QosData;
    }
    Mpdu {
        header: h,
        payload: vec![(seq % 251) as u8; payload_len],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregate_extents_tile_the_psdu(
        sizes in proptest::collection::vec(0usize..600, 1..64),
    ) {
        let mpdus: Vec<Mpdu> = sizes.iter().enumerate()
            .map(|(i, &len)| mpdu(i as u16, len))
            .collect();
        let (psdu, extents) = aggregate(&mpdus);
        prop_assert_eq!(extents.len(), mpdus.len());
        prop_assert_eq!(extents[0].start, 0);
        for w in extents.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "extents must tile");
            prop_assert_eq!(w[0].end % 4, 0, "non-final subframes 4-byte aligned");
        }
        prop_assert_eq!(extents.last().unwrap().end, psdu.len());
    }

    #[test]
    fn clean_deaggregation_recovers_everything(
        sizes in proptest::collection::vec(0usize..600, 1..64),
    ) {
        let mpdus: Vec<Mpdu> = sizes.iter().enumerate()
            .map(|(i, &len)| mpdu(i as u16, len))
            .collect();
        let (psdu, _) = aggregate(&mpdus);
        let outcomes = deaggregate(&psdu);
        prop_assert_eq!(outcomes.len(), mpdus.len());
        for (o, m) in outcomes.iter().zip(mpdus.iter()) {
            prop_assert_eq!(o.mpdu.as_ref(), Some(m));
        }
    }

    #[test]
    fn corruption_is_contained_to_the_damaged_subframe(
        n in 2usize..32,
        victim_sel in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mpdus: Vec<Mpdu> = (0..n).map(|i| mpdu(i as u16, 20)).collect();
        let (mut psdu, extents) = aggregate(&mpdus);
        let victim = victim_sel.index(n);
        let e = extents[victim];
        // Damage the victim's MPDU body only (not its delimiter).
        for b in &mut psdu[e.mpdu_start..e.mpdu_start + e.mpdu_len] {
            *b ^= xor;
        }
        let outcomes = deaggregate(&psdu);
        prop_assert_eq!(outcomes.len(), n);
        for (i, o) in outcomes.iter().enumerate() {
            if i == victim {
                prop_assert!(o.mpdu.is_none(), "victim {i} must fail");
            } else {
                prop_assert!(o.mpdu.is_some(), "bystander {i} must survive");
            }
        }
    }

    #[test]
    fn block_ack_bitmap_matches_loss_pattern(
        losses in proptest::collection::btree_set(0usize..32, 0..16),
    ) {
        let n = 32usize;
        let mpdus: Vec<Mpdu> = (0..n).map(|i| mpdu(i as u16, 10)).collect();
        let (mut psdu, extents) = aggregate(&mpdus);
        for &l in &losses {
            let e = extents[l];
            for b in &mut psdu[e.mpdu_start..e.mpdu_start + e.mpdu_len] {
                *b ^= 0x3C;
            }
        }
        let ba = BlockAck::from_outcomes(
            Addr::local(2), Addr::local(1), 0, 0, &deaggregate(&psdu));
        for (i, bit) in ba.tag_bits(n).iter().enumerate() {
            let expect = u8::from(!losses.contains(&i));
            prop_assert_eq!(*bit, expect, "bit {}", i);
        }
    }

    #[test]
    fn block_ack_wire_roundtrip(
        bitmap in any::<u64>(),
        ssn in 0u16..4096,
        tid in 0u8..16,
    ) {
        let ba = BlockAck {
            ra: Addr::local(9),
            ta: Addr::local(7),
            tid,
            ssn,
            bitmap,
        };
        prop_assert_eq!(BlockAck::from_bytes(&ba.to_bytes()), Some(ba));
    }

    #[test]
    fn header_roundtrip(
        seq in 0u16..4096,
        tid in 0u8..16,
        duration in any::<u16>(),
        protected in any::<bool>(),
    ) {
        let h = MacHeader {
            kind: FrameKind::QosData,
            protected,
            duration,
            addr1: Addr::local(1),
            addr2: Addr::local(2),
            addr3: Addr::local(3),
            seq,
            tid,
        };
        prop_assert_eq!(MacHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn garbage_never_panics_the_deaggregator(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Must terminate and produce no false positives that parse as
        // valid MPDUs (delimiter CRC + signature + FCS all colliding is
        // astronomically unlikely for random bytes).
        let outcomes = deaggregate(&garbage);
        for o in outcomes {
            prop_assert!(o.mpdu.is_none());
        }
    }
}
