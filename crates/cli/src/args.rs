//! A small, dependency-free argument parser for the `witag` CLI.
//!
//! Supports `--key value`, `--key=value` and bare flags; collects
//! positional arguments; reports unknown keys. Deliberately tiny — the
//! CLI has a handful of options per subcommand and the offline crate set
//! is kept minimal.

use std::collections::BTreeMap;

/// Parsed arguments: options by key plus positionals in order.
#[derive(Debug, Default, Clone)]
pub struct Args {
    opts: BTreeMap<String, String>,
    positionals: Vec<String>,
    /// Keys the caller has read (for unknown-option reporting).
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given without a value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The unparsable text.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Options the subcommand does not understand.
    Unknown(Vec<String>),
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "option --{key}: '{value}' is not a valid {expected}")
            }
            ArgError::Unknown(keys) => {
                write!(f, "unknown option(s): ")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{k}")?;
                }
                Ok(())
            }
        }
    }
}

impl Args {
    /// Parse a raw argument list (after the subcommand).
    ///
    /// Flags (`--foo` with no value) are stored with an empty value; a
    /// following token starting with `--` is treated as the next option,
    /// not a value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    args.opts.insert(k.to_string(), v.to_string());
                } else {
                    // Value is the next token unless it is another option.
                    match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let v = iter.next().unwrap();
                            args.opts.insert(stripped.to_string(), v);
                        }
                        _ => {
                            args.opts.insert(stripped.to_string(), String::new());
                        }
                    }
                }
            } else {
                args.positionals.push(tok);
            }
        }
        Ok(args)
    }

    /// Positional arguments (the `report` subcommand takes the trace
    /// path as one).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Raw option lookup (marks the key consumed).
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.opts.get(key).map(|s| s.as_str())
    }

    /// `true` if a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.raw(key).is_some()
    }

    /// A string option with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.raw(key) {
            Some(v) if !v.is_empty() => v,
            _ => default,
        }
    }

    /// An f64 option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.raw(key) {
            Some(v) if !v.is_empty() => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "number",
            }),
            Some(_) => Err(ArgError::MissingValue(key.to_string())),
            None => Ok(default),
        }
    }

    /// A usize option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.raw(key) {
            Some(v) if !v.is_empty() => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "integer",
            }),
            Some(_) => Err(ArgError::MissingValue(key.to_string())),
            None => Ok(default),
        }
    }

    /// A u64 option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.raw(key) {
            Some(v) if !v.is_empty() => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "integer",
            }),
            Some(_) => Err(ArgError::MissingValue(key.to_string())),
            None => Ok(default),
        }
    }

    /// After reading every option a subcommand understands, reject
    /// anything left over.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .opts
            .keys()
            .filter(|k| !consumed.contains(k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn key_value_forms() {
        let a = parse(&["--distance", "3.5", "--rounds=200", "--quiet"]);
        assert_eq!(a.f64_or("distance", 0.0).unwrap(), 3.5);
        assert_eq!(a.usize_or("rounds", 0).unwrap(), 200);
        assert!(a.flag("quiet"));
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.f64_or("distance", 1.5).unwrap(), 1.5);
        assert_eq!(a.str_or("location", "a"), "a");
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse(&["--quiet", "--seed", "7"]);
        assert!(a.flag("quiet"));
        assert_eq!(a.u64_or("seed", 0).unwrap(), 7);
    }

    #[test]
    fn positionals_collected() {
        let a = parse(&["hello", "--x", "1", "world"]);
        assert_eq!(a.positionals(), &["hello".to_string(), "world".to_string()]);
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["--rounds", "many"]);
        assert!(matches!(
            a.usize_or("rounds", 0),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_rejected() {
        let a = parse(&["--typo", "1"]);
        let _ = a.f64_or("distance", 0.0);
        assert!(matches!(a.reject_unknown(), Err(ArgError::Unknown(keys)) if keys == ["typo"]));
    }
}
