//! `witag` — command-line front end to the WiTAG reproduction.
//!
//! ```text
//! witag run    [--distance 1.0] [--rounds 150] [--seed 42] [--quiet]
//!              [--security open|wep|wpa2] [--encoding flip|ook]
//!              [--clock-khz 250] [--temp 0]
//! witag nlos   [--location a|b] [--windows 10] [--rounds 40] [--seed 7]
//! witag sweep  [--from 1] [--to 7] [--step 1] [--rounds 100] [--seed 42]
//!              [--threads N] [--trace out.jsonl]
//! witag design [--distance 1.0] [--clock-khz 250] [--subframes 64]
//! witag send   --message "text" [--distance 2] [--max-queries 400]
//! witag faults [--message "text"] [--intensity 1.0] [--distance 1]
//!              [--seed 42] [--plan-seed 7] [--budget 3000]
//!              [--trace out.jsonl]
//! witag net    [--clients 2] [--tags 8] [--scheduler rr|fair|edf|serial|pred]
//!              [--transport arq|fountain]
//!              [--horizon 2000] [--seed 42] [--window 4]
//!              [--duty 0.0] [--duty-period 4000]
//!              [--replicas 1] [--threads N] [--trace out.jsonl]
//! witag net    --cells 16 [--readers 16] [--tags 10000]
//!              [--scheduler rr|fair|edf|serial|pred] [--channels 3]
//!              [--batch 8] [--epoch 1000] [--horizon 60000] [--seed 42]
//!              [--duty 0.0] [--duty-period 4000]
//!              [--threads N] [--trace out.jsonl]
//! witag mox    [--streams 1,2,3] [--mcs 7] [--subframes 16] [--payload 64]
//!              [--eq zf|mmse] [--from 1] [--to 7] [--step 1] [--seed 2]
//!              [--threads N] [--trace out.jsonl]
//! witag report <trace.jsonl>
//! witag floorplan
//! ```
//!
//! Every subcommand prints a deterministic result for a given `--seed`.
//! `--trace` streams a `witag-obs/2` JSONL event trace (schema:
//! `docs/OBS_SCHEMA.md`); `report` aggregates such a trace into a
//! summary table. The trace bytes are independent of `--threads`.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

mod args;

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use args::{ArgError, Args};
use witag::experiment::{Experiment, ExperimentConfig, SecurityMode};
use witag::moxcatter::{run_point, MoxConfig};
use witag::query::QueryDesign;
use witag::tagnet::{
    deliver, session_over_experiment, session_over_experiment_obs, SessionConfig, SessionOutcome,
};
use witag_faults::FaultPlan;
use witag_net::{
    run_metro, run_replicas, FleetConfig, FleetReport, MetroConfig, SchedulerKind, Transport,
};
use witag_obs::{BufferRecorder, Event, JsonlRecorder, NullRecorder, Recorder, TraceSummary};
use witag_channel::{Link, LinkConfig};
use witag_sim::geom::Floorplan;
use witag_sim::time::Duration;
use witag_tag::device::BitEncoding;
use witag_tag::oscillator::Oscillator;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => fail(&e),
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&parsed),
        "nlos" => cmd_nlos(&parsed),
        "sweep" => cmd_sweep(&parsed),
        "design" => cmd_design(&parsed),
        "send" => cmd_send(&parsed),
        "faults" => cmd_faults(&parsed),
        "net" => cmd_net(&parsed),
        "mox" => cmd_mox(&parsed),
        "report" => cmd_report(&parsed),
        "floorplan" => cmd_floorplan(&parsed),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown subcommand '{other}'\n");
            usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        fail(&e);
    }
}

fn fail(e: &ArgError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2)
}

fn usage() {
    eprintln!(
        "witag — MAC-layer WiFi backscatter (HotNets'18 reproduction)\n\n\
         subcommands:\n\
         \x20 run        one scenario: BER/throughput at a tag position\n\
         \x20 nlos       the paper's Figure-6 NLOS locations\n\
         \x20 sweep      Figure-5 style distance sweep (parallel across\n\
         \x20            --threads; identical output at any thread count)\n\
         \x20 design     show the query design for a link\n\
         \x20 send       deliver a message via the reliable transport\n\
         \x20 faults     run the resilient session under injected faults\n\
         \x20            (single session; deterministic for --seed/--plan-seed)\n\
         \x20 net        fleet run: N clients x M tags on one medium under a\n\
         \x20            --scheduler (rr|fair|edf|serial|pred) and a\n\
         \x20            --transport (arq|fountain); prints goodput,\n\
         \x20            latency percentiles, airtime shares, collision rate.\n\
         \x20            With --cells N: the metro-scale engine (spatial\n\
         \x20            cells with --channels reuse, --readers readers,\n\
         \x20            batched grants, hierarchical scheduling) for\n\
         \x20            10^4..10^6 tags\n\
         \x20 mox        MOXcatter MIMO sweep: streams x MCS x tag distance,\n\
         \x20            per-stream block-ACK corruption from one tag\n\
         \x20 report     summarise a --trace JSONL file (docs/OBS_SCHEMA.md)\n\
         \x20 floorplan  print the simulated testbed geometry\n\n\
         `sweep`, `faults`, `net` and `mox` accept --trace <path> to stream a\n\
         witag-obs/2 event trace; see EXPERIMENTS.md (TRACE + REPORT,\n\
         PERF GATE) for walkthroughs.\n\
         run `witag <cmd> --help` semantics: all options have defaults;\n\
         see crates/cli/src/main.rs for the full list."
    );
}

/// Shared scenario options.
fn scenario(a: &Args) -> Result<ExperimentConfig, ArgError> {
    let distance = a.f64_or("distance", 1.0)?;
    let seed = a.u64_or("seed", 42)?;
    let mut cfg = ExperimentConfig::fig5(distance, seed);
    if a.flag("quiet") {
        cfg.link.interference_rate_hz = 0.0;
    }
    cfg.security = match a.str_or("security", "open") {
        "open" => SecurityMode::Open,
        "wep" => SecurityMode::Wep,
        "wpa2" => SecurityMode::Wpa2,
        other => {
            return Err(ArgError::BadValue {
                key: "security".into(),
                value: other.into(),
                expected: "open|wep|wpa2",
            })
        }
    };
    cfg.encoding = match a.str_or("encoding", "flip") {
        "flip" => BitEncoding::PhaseFlip,
        "ook" => BitEncoding::OnOffKeying,
        other => {
            return Err(ArgError::BadValue {
                key: "encoding".into(),
                value: other.into(),
                expected: "flip|ook",
            })
        }
    };
    let khz = a.f64_or("clock-khz", 250.0)?;
    cfg.clock = Oscillator::Crystal { freq_hz: khz * 1e3 };
    cfg.temperature_delta = a.f64_or("temp", 0.0)?;
    Ok(cfg)
}

fn cmd_run(a: &Args) -> Result<(), ArgError> {
    let cfg = scenario(a)?;
    let rounds = a.usize_or("rounds", 150)?;
    a.reject_unknown()?;
    let mut exp = match Experiment::new(cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("scenario not viable: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "link SNR {:.1} dB; query: {:?}-{:?}, {} B subframes x {}",
        exp.snr_db(),
        exp.design.phy.mcs.modulation,
        exp.design.phy.mcs.code_rate,
        exp.design.subframe_bytes,
        exp.design.n_subframes
    );
    let stats = exp.run(rounds);
    println!(
        "{} rounds: BER {:.4} (false0 {}, false1 {}), throughput {:.1} Kbps, \
         missed triggers {}, lost BAs {}",
        stats.rounds,
        stats.ber(),
        stats.errors.false_zeros,
        stats.errors.false_ones,
        stats.throughput_kbps(),
        stats.missed_triggers,
        stats.lost_block_acks
    );
    Ok(())
}

fn cmd_nlos(a: &Args) -> Result<(), ArgError> {
    let seed = a.u64_or("seed", 7)?;
    let windows = a.usize_or("windows", 10)?;
    let rounds = a.usize_or("rounds", 40)?;
    let loc = a.str_or("location", "both").to_string();
    a.reject_unknown()?;
    let run = |name: &str, cfg: ExperimentConfig| {
        let mut exp = Experiment::new(cfg).expect("NLOS scenario viable");
        let mut stats = exp.run_windows(windows, rounds);
        println!(
            "location {name}: SNR {:.1} dB, mean BER {:.4}, p90 window BER {:.4}, tput {:.1} Kbps",
            exp.snr_db(),
            stats.ber(),
            stats.window_bers.percentile(90.0).unwrap_or(0.0),
            stats.throughput_kbps()
        );
    };
    match loc.as_str() {
        "a" => run("A", ExperimentConfig::nlos_a(seed)),
        "b" => run("B", ExperimentConfig::nlos_b(seed)),
        _ => {
            run("A", ExperimentConfig::nlos_a(seed));
            run("B", ExperimentConfig::nlos_b(seed));
        }
    }
    Ok(())
}

/// Read `--trace <path>`: `None` when absent, error on an empty value.
fn trace_arg(a: &Args) -> Result<Option<String>, ArgError> {
    match a.raw("trace") {
        Some("") => Err(ArgError::MissingValue("trace".into())),
        t => Ok(t.map(str::to_string)),
    }
}

/// Open a JSONL trace sink at `path`, exiting with a message on failure.
fn open_trace(path: &str) -> JsonlRecorder<BufWriter<File>> {
    match JsonlRecorder::create(Path::new(path)) {
        Ok(rec) => rec,
        Err(e) => {
            eprintln!("cannot create trace file '{path}': {e}");
            std::process::exit(1);
        }
    }
}

/// Flush a trace sink and report how many events landed on disk.
fn close_trace(rec: JsonlRecorder<BufWriter<File>>, path: &str) {
    let events = rec.lines();
    match rec.finish() {
        Ok(_) => eprintln!("trace: {events} events -> {path}"),
        Err(e) => {
            eprintln!("trace file '{path}' is incomplete: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_sweep(a: &Args) -> Result<(), ArgError> {
    let from = a.f64_or("from", 1.0)?;
    let to = a.f64_or("to", 7.0)?;
    let step = a.f64_or("step", 1.0)?;
    let rounds = a.usize_or("rounds", 100)?;
    let seed = a.u64_or("seed", 42)?;
    let threads = a.usize_or("threads", witag_sim::available_threads())?;
    let trace = trace_arg(a)?;
    a.reject_unknown()?;
    println!("{:>10} {:>10} {:>14}", "dist (m)", "BER", "tput (Kbps)");
    // Sweep points are independent experiments, so they parallelise with
    // no change in output: each point's seed and round sequence are
    // exactly what the serial loop used, and results print in distance
    // order regardless of completion order. When tracing, each worker
    // buffers its point's events and the buffers are replayed in point
    // order, so the trace bytes are thread-count-invariant too.
    let mut distances = Vec::new();
    let mut d = from;
    while d <= to + 1e-9 {
        distances.push(d);
        d += step.max(0.01);
    }
    let tracing = trace.is_some();
    let results = witag_sim::par_map(distances.len(), threads, |i| {
        let mut exp =
            Experiment::new(ExperimentConfig::fig5(distances[i], seed)).expect("viable");
        if tracing {
            let mut buf = BufferRecorder::new();
            let stats = exp.run_obs(rounds, &mut buf);
            (stats, Some(buf))
        } else {
            (exp.run(rounds), None)
        }
    });
    for (d, (stats, _)) in distances.iter().zip(results.iter()) {
        println!("{d:>10.2} {:>10.4} {:>14.1}", stats.ber(), stats.throughput_kbps());
    }
    if let Some(path) = trace {
        let mut rec = open_trace(&path);
        for (i, (d, (_, buf))) in distances.iter().zip(results.iter()).enumerate() {
            rec.record(&Event::SweepPoint {
                index: i as u32,
                distance_m: *d,
            });
            if let Some(buf) = buf {
                buf.replay_into(&mut rec);
            }
        }
        close_trace(rec, &path);
    }
    Ok(())
}

/// `witag mox` — the MOXcatter MIMO sweep: multiplexed per-stream
/// A-MPDUs through a matrix channel with one modulating tag, reporting
/// how the corruption lands on every stream's block-ACK bitmap.
fn cmd_mox(a: &Args) -> Result<(), ArgError> {
    let streams_raw = a.str_or("streams", "2").to_string();
    let streams_list: Vec<usize> = streams_raw
        .split(',')
        .map(|t| {
            t.trim().parse::<usize>().ok().filter(|n| (1..=4).contains(n)).ok_or_else(|| {
                ArgError::BadValue {
                    key: "streams".into(),
                    value: streams_raw.clone(),
                    expected: "comma list of stream counts 1-4",
                }
            })
        })
        .collect::<Result<_, _>>()?;
    let base_mcs = a.usize_or("mcs", 7)?;
    if base_mcs > 7 {
        return Err(ArgError::BadValue {
            key: "mcs".into(),
            value: base_mcs.to_string(),
            expected: "base HT MCS index 0-7",
        });
    }
    let subframes = a.usize_or("subframes", 16)?;
    let payload = a.usize_or("payload", 64)?;
    let eq = match a.str_or("eq", "mmse") {
        "zf" => witag_phy::MimoEqualiser::Zf,
        "mmse" => witag_phy::MimoEqualiser::Mmse,
        other => {
            return Err(ArgError::BadValue {
                key: "eq".into(),
                value: other.to_string(),
                expected: "zf or mmse",
            })
        }
    };
    let from = a.f64_or("from", 1.0)?;
    let to = a.f64_or("to", 7.0)?;
    let step = a.f64_or("step", 1.0)?;
    let seed = a.u64_or("seed", 2)?;
    let threads = a.usize_or("threads", witag_sim::available_threads())?;
    let trace = trace_arg(a)?;
    a.reject_unknown()?;

    let mut distances = Vec::new();
    let mut d = from;
    while d <= to + 1e-9 {
        distances.push(d);
        d += step.max(0.01);
    }
    // One point per (streams, distance) combo, globally indexed in print
    // order so the trace's `index` stamps are sweep-order stable.
    let points: Vec<(usize, f64)> = streams_list
        .iter()
        .flat_map(|&n| distances.iter().map(move |&d| (n, d)))
        .collect();
    let tracing = trace.is_some();
    // Points are independent; parallelise like `sweep` with per-point
    // buffers replayed in point order for thread-count-invariant traces.
    let results = witag_sim::par_map(points.len(), threads, |i| {
        let (n, d) = points[i];
        let cfg = MoxConfig {
            streams: n,
            base_mcs,
            subframes,
            payload_bytes: payload,
            equaliser: eq,
            seed,
        };
        if tracing {
            let mut buf = BufferRecorder::new();
            let r = run_point(i as u32, d, &cfg, &mut buf);
            (r, Some(buf))
        } else {
            (run_point(i as u32, d, &cfg, &mut NullRecorder), None)
        }
    });

    println!(
        "{:>7} {:>4} {:>8} {:>9} {:>9} {:>12} {:>5}",
        "streams", "mcs", "dist (m)", "snr min", "snr max", "acked", "hit"
    );
    for ((n, d), (r, _)) in points.iter().zip(results.iter()) {
        let acked: Vec<String> = r
            .streams
            .iter()
            .map(|s| format!("{}/{}", s.acked, s.subframes))
            .collect();
        println!(
            "{:>7} {:>4} {:>8.2} {:>9.1} {:>9.1} {:>12} {:>3}/{}",
            n,
            8 * (n - 1) + base_mcs,
            d,
            r.snr_min_db,
            r.snr_max_db,
            acked.join(" "),
            r.streams_hit(),
            n
        );
    }
    if let Some(path) = trace {
        let mut rec = open_trace(&path);
        for (_, buf) in &results {
            if let Some(buf) = buf {
                buf.replay_into(&mut rec);
            }
        }
        close_trace(rec, &path);
    }
    Ok(())
}

fn cmd_design(a: &Args) -> Result<(), ArgError> {
    let distance = a.f64_or("distance", 1.0)?;
    let khz = a.f64_or("clock-khz", 250.0)?;
    let subframes = a.usize_or("subframes", 64)?;
    a.reject_unknown()?;
    let fp = Floorplan::paper_testbed();
    let client = Floorplan::los_client_position();
    let ap = Floorplan::ap_position();
    let tag = client.lerp(ap, distance / client.distance(ap));
    let link = Link::new(&fp, client, ap, Some(tag), LinkConfig::default(), 1);
    let clock = Oscillator::Crystal { freq_hz: khz * 1e3 };
    match QueryDesign::best(&link, &clock, subframes, 2) {
        Ok(d) => {
            println!("link SNR:         {:.1} dB", link.snr_db());
            println!(
                "query MCS:        {:?} {:?} ({} MHz)",
                d.phy.mcs.modulation,
                d.phy.mcs.code_rate,
                d.phy.bandwidth.hertz() / 1_000_000
            );
            println!(
                "subframe:         {} bytes = {} OFDM symbols = {}",
                d.subframe_bytes,
                d.symbols_per_subframe,
                d.subframe_airtime()
            );
            println!("bits per query:   {}", d.bits_per_query());
            println!(
                "marker signature: {:?} (gap {})",
                d.signature.bursts, d.marker_gap
            );
            println!(
                "est. tag rate:    {:.1} Kbps",
                d.bits_per_query() as f64 / d.round_airtime_estimate().as_secs_f64() / 1e3
            );
        }
        Err(e) => {
            eprintln!("no feasible corruptible design: {e}");
            std::process::exit(1);
        }
    }
    Ok(())
}

fn cmd_send(a: &Args) -> Result<(), ArgError> {
    let message = a.str_or("message", "hello from the tag").to_string();
    let distance = a.f64_or("distance", 2.0)?;
    let seed = a.u64_or("seed", 42)?;
    let max_queries = a.usize_or("max-queries", 400)?;
    a.reject_unknown()?;
    let mut exp =
        Experiment::new(ExperimentConfig::fig5(distance, seed)).expect("scenario viable");
    let n_bits = exp.design.bits_per_query();
    match deliver(message.as_bytes(), n_bits, max_queries, |tx| {
        exp.run_round(tx).readout.bits
    }) {
        Some((got, queries)) => {
            println!(
                "delivered {} bytes in {queries} queries: {:?}",
                got.len(),
                String::from_utf8_lossy(&got)
            );
            assert_eq!(got, message.as_bytes(), "transport integrity");
        }
        None => {
            eprintln!("gave up after {max_queries} queries");
            std::process::exit(1);
        }
    }
    Ok(())
}

fn cmd_faults(a: &Args) -> Result<(), ArgError> {
    let message = a.str_or("message", "sensor frame 0042: 21.5C 40%RH ok").to_string();
    let distance = a.f64_or("distance", 1.0)?;
    let seed = a.u64_or("seed", 42)?;
    let plan_seed = a.u64_or("plan-seed", 7)?;
    let intensity = a.f64_or("intensity", 1.0)?;
    let budget = a.usize_or("budget", 3000)?;
    let trace = trace_arg(a)?;
    a.reject_unknown()?;
    let mut exp =
        Experiment::new(ExperimentConfig::fig5(distance, seed)).expect("scenario viable");
    exp.attach_faults(FaultPlan::hostile_scaled(plan_seed, intensity));
    let cfg = SessionConfig {
        max_rounds: budget,
        ..SessionConfig::default()
    };
    let outcome = if let Some(path) = &trace {
        let mut rec = open_trace(path);
        let r = session_over_experiment_obs(&mut exp, message.as_bytes(), &cfg, &mut rec);
        close_trace(rec, path);
        r
    } else {
        session_over_experiment(&mut exp, message.as_bytes(), &cfg)
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("session setup failed: {e}");
            std::process::exit(1);
        }
    };
    let s = &report.stats;
    println!(
        "fault plan: hostile x{intensity:.2}, seed {plan_seed}; budget {budget} rounds"
    );
    if let Some(c) = exp.fault_counters() {
        println!(
            "injected:   {} lost queries, {} lost block ACKs, {} burst / {} drift / {} brownout rounds",
            c.queries_lost, c.block_acks_lost, c.burst_rounds, c.drift_rounds, c.brownout_rounds
        );
    }
    println!(
        "session:    {} rounds ({} idle), {} retransmissions, {} resyncs, {} desync events",
        s.rounds, s.idle_rounds, s.retransmissions, s.resyncs, s.desync_events
    );
    println!(
        "            goodput {:.3} ({} payload bits over {} raw)",
        s.goodput_ratio(),
        s.payload_bits,
        s.raw_bits
    );
    match report.outcome {
        SessionOutcome::Delivered(bytes) => {
            println!(
                "delivered:  {} bytes: {:?}",
                bytes.len(),
                String::from_utf8_lossy(&bytes)
            );
            assert_eq!(bytes, message.as_bytes(), "transport integrity");
        }
        SessionOutcome::Failed(f) => {
            eprintln!("failed: {f:?} — the plan won this time");
            std::process::exit(1);
        }
    }
    Ok(())
}

fn cmd_net(a: &Args) -> Result<(), ArgError> {
    if a.raw("cells").is_some() {
        return cmd_net_metro(a);
    }
    let clients = a.usize_or("clients", 2)?;
    let tags = a.usize_or("tags", 8)?;
    let sched_name = a.str_or("scheduler", "fair").to_string();
    let scheduler = match SchedulerKind::parse(&sched_name) {
        Some(k) => k,
        None => {
            return Err(ArgError::BadValue {
                key: "scheduler".into(),
                value: sched_name,
                expected: "rr|fair|edf|serial|pred",
            })
        }
    };
    let transport_name = a.str_or("transport", "arq").to_string();
    let transport = match Transport::parse(&transport_name) {
        Some(t) => t,
        None => {
            return Err(ArgError::BadValue {
                key: "transport".into(),
                value: transport_name,
                expected: "arq|fountain",
            })
        }
    };
    let horizon_ms = a.u64_or("horizon", 2000)?;
    let seed = a.u64_or("seed", 42)?;
    let window = a.usize_or("window", 4)?;
    let duty = a.f64_or("duty", 0.0)?;
    let duty_period_ms = a.u64_or("duty-period", 4000)?;
    let replicas = a.usize_or("replicas", 1)?;
    let threads = a.usize_or("threads", witag_sim::available_threads())?;
    let trace = trace_arg(a)?;
    a.reject_unknown()?;
    let mut cfg = FleetConfig::inventory(
        clients,
        tags,
        scheduler,
        Duration::millis(horizon_ms),
        seed,
    );
    cfg.window = window;
    cfg = cfg.with_transport(transport);
    if duty > 0.0 {
        cfg = cfg.with_duty_cycle(Duration::millis(duty_period_ms), duty);
    }
    let outcome = if let Some(path) = &trace {
        let mut rec = open_trace(path);
        let r = run_replicas(&cfg, replicas, threads, &mut rec);
        close_trace(rec, path);
        r
    } else {
        run_replicas(&cfg, replicas, threads, &mut NullRecorder)
    };
    let reports = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet not viable: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "fleet: {clients} client(s) x {tags} tag(s) | scheduler {} | transport {} | horizon {horizon_ms} ms | seed {seed}",
        scheduler.name(),
        transport.name()
    );
    if duty > 0.0 {
        println!(
            "duty cycle: {duty:.2} ON fraction over {duty_period_ms} ms periods (phases spread)"
        );
    }
    for (i, rep) in reports.iter().enumerate() {
        print_fleet_report(i, tags, rep);
    }
    Ok(())
}

/// `witag net --cells …`: the metro-scale engine (spatial cells,
/// channel reuse, batched grants, hierarchical scheduling).
fn cmd_net_metro(a: &Args) -> Result<(), ArgError> {
    let cells = a.usize_or("cells", 4)?;
    let readers = a.usize_or("readers", cells)?;
    let tags = a.usize_or("tags", 1000)?;
    let sched_name = a.str_or("scheduler", "fair").to_string();
    let scheduler = match SchedulerKind::parse(&sched_name) {
        Some(k) => k,
        None => {
            return Err(ArgError::BadValue {
                key: "scheduler".into(),
                value: sched_name,
                expected: "rr|fair|edf|serial|pred",
            })
        }
    };
    let horizon_ms = a.u64_or("horizon", 60_000)?;
    let seed = a.u64_or("seed", 42)?;
    let channels = a.usize_or("channels", 3)?;
    let batch = a.usize_or("batch", 8)? as u32;
    let epoch_ms = a.u64_or("epoch", 1000)?;
    let duty = a.f64_or("duty", 0.0)?;
    let duty_period_ms = a.u64_or("duty-period", 4000)?;
    let threads = a.usize_or("threads", witag_sim::available_threads())?;
    let trace = trace_arg(a)?;
    a.reject_unknown()?;
    let mut cfg = MetroConfig::inventory(
        cells,
        readers,
        tags,
        scheduler,
        Duration::millis(horizon_ms),
        seed,
    );
    cfg.channels = channels;
    cfg.batch = batch;
    cfg.epoch = Duration::millis(epoch_ms);
    if duty > 0.0 {
        cfg = cfg.with_duty_cycle(Duration::millis(duty_period_ms), duty);
    }
    let outcome = if let Some(path) = &trace {
        let mut rec = open_trace(path);
        let r = run_metro(&cfg, threads, &mut rec);
        close_trace(rec, path);
        r
    } else {
        run_metro(&cfg, threads, &mut NullRecorder)
    };
    let rep = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("metro not viable: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "metro: {cells} cell(s) x {readers} reader(s) x {tags} tag(s) | scheduler {} | {} channel(s) -> {} contention domain(s)",
        scheduler.name(),
        channels,
        rep.domains
    );
    println!(
        "       batch {batch} | epoch {epoch_ms} ms | horizon {horizon_ms} ms | seed {seed}"
    );
    if duty > 0.0 {
        println!(
            "duty cycle: {duty:.2} ON fraction over {duty_period_ms} ms periods (phases spread)"
        );
    }
    let pct = |p: f64| {
        rep.latency_percentile(p)
            .map_or_else(|| "-".to_string(), |us| format!("{:.1}", us / 1000.0))
    };
    println!(
        "delivered {}/{tags} | grants {} | collisions {} (rate {:.3}) | probe rounds {} | elapsed {:.1} ms",
        rep.delivered,
        rep.grants,
        rep.collisions,
        rep.collision_rate(),
        rep.probe_rounds,
        rep.elapsed.as_secs_f64() * 1e3
    );
    println!(
        "goodput {:.1} Kbps | read latency ms p50 {} p90 {} p99 {} | airtime {:.1} ms across cells | deadlines met {}/{}",
        rep.goodput_bps() / 1e3,
        pct(50.0),
        pct(90.0),
        pct(99.0),
        rep.airtime.as_secs_f64() * 1e3,
        rep.deadline_hits,
        rep.delivered
    );
    let busiest = rep
        .cell_summaries
        .iter()
        .max_by_key(|c| c.grants)
        .map_or(0, |c| c.cell);
    println!(
        "cells: busiest cell {} | per-cell delivery min {} max {}",
        busiest,
        rep.cell_summaries.iter().map(|c| c.delivered).min().unwrap_or(0),
        rep.cell_summaries.iter().map(|c| c.delivered).max().unwrap_or(0)
    );
    Ok(())
}

/// Render one replica's fleet report in the CLI's fixed format.
fn print_fleet_report(replica: usize, tags: usize, rep: &FleetReport) {
    let shares = rep.airtime_shares();
    let min_share = shares.iter().copied().fold(f64::MAX, f64::min);
    let max_share = shares.iter().copied().fold(0.0, f64::max);
    let pct = |p: f64| {
        rep.latency_percentile(p)
            .map_or_else(|| "-".to_string(), |us| format!("{:.1}", us / 1000.0))
    };
    println!(
        "replica {replica}: delivered {}/{tags} | grants {} | collisions {} (rate {:.3}) | elapsed {:.1} ms",
        rep.delivered(),
        rep.grants,
        rep.collisions,
        rep.collision_rate(),
        rep.elapsed.as_secs_f64() * 1e3
    );
    println!(
        "          goodput {:.1} Kbps | read latency ms p50 {} p90 {} p99 {} | airtime share min {:.3} max {:.3} | deadlines met {}/{}",
        rep.goodput_bps() / 1e3,
        pct(50.0),
        pct(90.0),
        pct(99.0),
        min_share,
        max_share,
        rep.deadline_hits(),
        rep.delivered()
    );
}

fn cmd_report(a: &Args) -> Result<(), ArgError> {
    a.reject_unknown()?;
    let path = match a.positionals().first() {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: witag report <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read trace file '{path}': {e}");
            std::process::exit(1);
        }
    };
    let mut summary = TraceSummary::default();
    for line in text.lines() {
        summary.ingest_line(line);
    }
    if summary.events() == 0 && summary.schema().is_none() {
        eprintln!("'{path}' contains no witag-obs events");
        std::process::exit(1);
    }
    print!("{}", summary.render());
    Ok(())
}

fn cmd_floorplan(a: &Args) -> Result<(), ArgError> {
    a.reject_unknown()?;
    let fp = Floorplan::paper_testbed();
    println!("testbed reconstruction of the paper's Figure 4 (18 m x 7 m):\n");
    println!("  AP          at {:?}", Floorplan::ap_position());
    println!("  LOS client  at {:?}  (8 m from the AP)", Floorplan::los_client_position());
    println!("  NLOS A      at {:?}  (~7 m)", Floorplan::nlos_a_client_position());
    println!("  NLOS B      at {:?}  (~17 m)", Floorplan::nlos_b_client_position());
    println!("\nobstacles:");
    for o in &fp.obstacles {
        println!(
            "  {:?} from ({:.1},{:.1}) to ({:.1},{:.1})  [{:.0} dB/crossing]",
            o.material,
            o.segment.a.x,
            o.segment.a.y,
            o.segment.b.x,
            o.segment.b.y,
            o.material.penetration_loss_db()
        );
    }
    println!("\nreflectors: {:?}", fp.reflectors);
    Ok(())
}
