//! Matrix MIMO channel: per-subcarrier `Nss×Nss` responses with a rank-1
//! backscatter tag.
//!
//! A [`MimoLink`] generalises [`Link`](crate::Link) to antenna arrays at
//! both ends. Each TX element `i` → RX element `j` pair gets its own ray
//! sum, so the channel at subcarrier offset `f` is a full complex matrix
//! `H(f)` rather than a scalar:
//!
//! * the **direct paths** carry per-element geometric phases from the
//!   exact element-to-element distances (λ/2 spacing by default). In pure
//!   LOS these phases are nearly equal across the array, so the direct
//!   matrix is close to rank-1 — the classical reason LOS MIMO is
//!   ill-conditioned and spatial multiplexing leans on scattering;
//! * **environmental rays** contribute correlated Rayleigh gains per
//!   antenna pair: `g_ji = a·(√ρ·c + √(1−ρ)·z_ji)` with a shared complex
//!   component `c` and i.i.d. per-pair components `z_ji`
//!   ([`MimoLinkConfig::correlation`] is ρ). These supply the rank that
//!   makes ZF/MMSE separation possible;
//! * the **tag ray** is an *exactly rank-1* perturbation: the tag is one
//!   physical scatterer, so its contribution factors as an outer product
//!   `u_j·v_i` of the RX-side and TX-side hop responses (the two-hop
//!   [`backscatter_amplitude`] is separable in the hop distances). When
//!   the tag flips its switch state, **every entry of `H` moves at
//!   once** — the MOXcatter observation that a single backscatter
//!   reflector leaks across all spatial streams simultaneously, which is
//!   what makes WiTAG-style modulation MIMO-agnostic (paper §4).
//!
//! Determinism mirrors [`Link`](crate::Link): everything is seeded, and a
//! given `(floorplan, positions, config, seed)` tuple reproduces the same
//! matrices bit-for-bit.

use crate::link::{LinkConfig, TagMode, TagSchedule};
use crate::pathloss::{
    db_to_linear, dbm_to_mw, freespace_amplitude, noise_floor_dbm,
    wavelength, SPEED_OF_LIGHT,
};
use witag_phy::complex::{c64, Complex64};
use witag_phy::mcs::Mcs;
use witag_phy::mimo::MimoEqualiser;
use witag_phy::params::{Bandwidth, GuardInterval, SubcarrierLayout};
use witag_phy::ppdu::{OfdmSymbol, Ppdu};
use witag_sim::geom::{Floorplan, Point2};
use witag_sim::rng::Rng;
use witag_sim::time::Duration;

/// Radio/array parameters for a [`MimoLink`].
#[derive(Debug, Clone)]
pub struct MimoLinkConfig {
    /// Scalar link parameters (carrier, powers, multipath statistics…).
    pub link: LinkConfig,
    /// Antenna element spacing in metres at both ends. `0.0` (the
    /// default) means λ/2 at the configured carrier.
    pub spacing_m: f64,
    /// Inter-pair correlation ρ of the environmental Rayleigh gains, in
    /// `[0, 1]`. `0` = i.i.d. fading per antenna pair, `1` = fully
    /// correlated (keyhole). Default 0.25 — lightly correlated indoor
    /// arrays.
    pub correlation: f64,
}

impl Default for MimoLinkConfig {
    fn default() -> Self {
        MimoLinkConfig {
            link: LinkConfig::default(),
            spacing_m: 0.0,
            correlation: 0.25,
        }
    }
}

impl MimoLinkConfig {
    /// A scattering-rich indoor profile: more and stronger environmental
    /// rays than [`LinkConfig::default`], giving well-conditioned
    /// matrices that support 2–3 spatial streams (the MOXcatter testbed
    /// regime). Interference is left at the scalar default.
    pub fn rich_scattering() -> Self {
        MimoLinkConfig {
            link: LinkConfig {
                n_env_rays: 12,
                env_ray_rel_db: -6.0,
                ..LinkConfig::default()
            },
            spacing_m: 0.0,
            correlation: 0.25,
        }
    }
}

/// One per-antenna-pair propagation ray.
#[derive(Debug, Clone, Copy)]
struct MRay {
    amplitude: Complex64,
    /// Excess delay over the array-centre direct path (s).
    delay: f64,
}

impl MRay {
    fn at(&self, f: f64) -> Complex64 {
        self.amplitude * Complex64::from_polar(1.0, -2.0 * core::f64::consts::PI * f * self.delay)
    }
}

/// An environmental ray: one excess delay shared by the array, plus a
/// correlated-Rayleigh complex gain per antenna pair (`gains[j*nss+i]`).
#[derive(Debug, Clone)]
struct EnvRay {
    delay: f64,
    gains: Vec<Complex64>,
}

/// The tag's rank-1 contribution: `ΔH_ji = u[j]·v[i]·e^{−j2πfτ}·coeff`.
#[derive(Debug, Clone)]
struct TagRay {
    /// RX-side hop factors (one per RX element).
    u: Vec<Complex64>,
    /// TX-side hop factors (one per TX element), carrying the scatterer
    /// gain and penetration losses.
    v: Vec<Complex64>,
    /// Excess delay of the centre two-hop path (s).
    delay: f64,
}

/// A TX array → RX array channel with an optional backscatter tag.
#[derive(Debug, Clone)]
pub struct MimoLink {
    cfg: MimoLinkConfig,
    nss: usize,
    /// `direct[j * nss + i]`: TX element `i` → RX element `j`.
    direct: Vec<MRay>,
    env: Vec<EnvRay>,
    tag: Option<TagRay>,
    tag_distances: Option<(f64, f64)>,
    noise_var: f64,
    rng: Rng,
}

/// Antenna element positions: a uniform linear array centred on `at`,
/// laid out perpendicular to the link axis `axis` (broadside).
fn element_positions(at: Point2, axis: (f64, f64), n: usize, spacing: f64) -> Vec<Point2> {
    let norm = (axis.0 * axis.0 + axis.1 * axis.1).sqrt();
    let (px, py) = if norm > 1e-12 {
        (-axis.1 / norm, axis.0 / norm)
    } else {
        (0.0, 1.0)
    };
    (0..n)
        .map(|k| {
            let off = (k as f64 - (n as f64 - 1.0) / 2.0) * spacing;
            Point2::new(at.x + off * px, at.y + off * py)
        })
        .collect()
}

impl MimoLink {
    /// Build an `nss`-antenna link inside `floorplan` from `tx` to `rx`
    /// (array centres), with an optional tag at `tag_pos`. Deterministic
    /// in `seed`.
    pub fn new(
        floorplan: &Floorplan,
        tx: Point2,
        rx: Point2,
        tag_pos: Option<Point2>,
        nss: usize,
        cfg: MimoLinkConfig,
        seed: u64,
    ) -> Self {
        assert!((1..=4).contains(&nss), "1–4 antennas per end, got {nss}");
        let mut rng = Rng::seed_from_u64(seed);
        let f = cfg.link.carrier_hz;
        let spacing = if cfg.spacing_m > 0.0 {
            cfg.spacing_m
        } else {
            wavelength(f) / 2.0
        };
        let axis = (rx.x - tx.x, rx.y - tx.y);
        let tx_el = element_positions(tx, axis, nss, spacing);
        let rx_el = element_positions(rx, axis, nss, spacing);

        // Direct paths: exact element-to-element geometry. Obstacle
        // penetration is evaluated once at the array centres (the array
        // aperture is centimetres; walls do not resolve it).
        let d_ref = tx.distance(rx);
        let pen_amp = db_to_linear(-floorplan.penetration_loss_db(tx, rx)).sqrt();
        let mut direct = Vec::with_capacity(nss * nss);
        for rj in &rx_el {
            for ti in &tx_el {
                let d = ti.distance(*rj);
                direct.push(MRay {
                    amplitude: Complex64::from_polar(
                        freespace_amplitude(d, f) * pen_amp,
                        -2.0 * core::f64::consts::PI * f * (d / SPEED_OF_LIGHT),
                    ),
                    delay: (d - d_ref) / SPEED_OF_LIGHT,
                });
            }
        }
        let direct_amp = freespace_amplitude(d_ref, f) * pen_amp;
        let direct_delay = d_ref / SPEED_OF_LIGHT;

        // Environmental rays: floorplan reflectors first, synthetic
        // scatterers after (same recipe as the scalar Link), each with a
        // correlated-Rayleigh gain per antenna pair.
        let rho = cfg.correlation.clamp(0.0, 1.0);
        let (wc, wz) = (rho.sqrt(), (1.0 - rho).sqrt());
        let mut reflector_points: Vec<Point2> = floorplan.reflectors.clone();
        while reflector_points.len() < cfg.link.n_env_rays {
            let t = rng.f64();
            let base = tx.lerp(rx, t);
            reflector_points.push(Point2::new(
                base.x + rng.range_f64(-4.0, 4.0),
                base.y + rng.range_f64(-4.0, 4.0),
            ));
        }
        let n_rays = cfg.link.n_env_rays.max(floorplan.reflectors.len());
        let mut env = Vec::with_capacity(n_rays);
        for p in reflector_points.iter().take(n_rays) {
            let path_len = tx.distance(*p) + p.distance(rx);
            let rel_db = cfg.link.env_ray_rel_db + rng.normal(0.0, 3.0);
            let amp = direct_amp * db_to_linear(rel_db).sqrt();
            // Shared component: the ray's bulk complex gain; per-pair
            // components: i.i.d. CN(0,1) scatter around it.
            let common = c64(
                rng.gaussian() / core::f64::consts::SQRT_2,
                rng.gaussian() / core::f64::consts::SQRT_2,
            );
            let gains = (0..nss * nss)
                .map(|_| {
                    let z = c64(
                        rng.gaussian() / core::f64::consts::SQRT_2,
                        rng.gaussian() / core::f64::consts::SQRT_2,
                    );
                    (common * wc + z * wz) * amp
                })
                .collect();
            env.push(EnvRay {
                delay: (path_len / SPEED_OF_LIGHT) - direct_delay,
                gains,
            });
        }

        // Tag ray: exactly rank-1. backscatter_amplitude(ds, dr, …) is
        // separable in the hop distances, so the per-pair amplitude
        // factors as s(ds_i)·r(dr_j); the carrier phases factor the same
        // way. The full scatterer gain (and two-hop penetration loss)
        // rides on the TX-side factor.
        let (tag, tag_distances) = match tag_pos {
            Some(p) => {
                let pen =
                    floorplan.penetration_loss_db(tx, p) + floorplan.penetration_loss_db(p, rx);
                let k = cfg.link.tag_field_gain
                    * 4.0
                    * core::f64::consts::PI
                    / wavelength(f)
                    * db_to_linear(-pen).sqrt();
                let v = tx_el
                    .iter()
                    .map(|ti| {
                        let ds = ti.distance(p);
                        Complex64::from_polar(
                            k * freespace_amplitude(ds, f),
                            -2.0 * core::f64::consts::PI * f * ds / SPEED_OF_LIGHT,
                        )
                    })
                    .collect();
                let u = rx_el
                    .iter()
                    .map(|rj| {
                        let dr = rj.distance(p);
                        Complex64::from_polar(
                            freespace_amplitude(dr, f),
                            -2.0 * core::f64::consts::PI * f * dr / SPEED_OF_LIGHT,
                        )
                    })
                    .collect();
                let ds0 = tx.distance(p);
                let dr0 = p.distance(rx);
                (
                    Some(TagRay {
                        u,
                        v,
                        delay: ((ds0 + dr0) / SPEED_OF_LIGHT) - direct_delay,
                    }),
                    Some((ds0, dr0)),
                )
            }
            None => (None, None),
        };

        let noise_mw = dbm_to_mw(noise_floor_dbm(cfg.link.bandwidth_hz, cfg.link.noise_figure_db));
        let tx_mw = dbm_to_mw(cfg.link.tx_power_dbm);

        MimoLink {
            cfg,
            nss,
            direct,
            env,
            tag,
            tag_distances,
            noise_var: noise_mw / tx_mw,
            rng,
        }
    }

    /// Number of antennas per end.
    pub fn nss(&self) -> usize {
        self.nss
    }

    /// Per-subcarrier complex noise variance relative to unit TX power
    /// (per RX antenna).
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// TX→tag / tag→RX centre distances, if a tag is present.
    pub fn tag_distances(&self) -> Option<(f64, f64)> {
        self.tag_distances
    }

    /// The channel matrix at baseband offsets `freqs_hz` for a tag switch
    /// state, flattened as `h[pos·nss² + j·nss + i]` (RX antenna `j`, TX
    /// stream `i`) — the layout `witag_phy::mimo` uses.
    pub fn response_at(&self, mode: TagMode, freqs_hz: &[f64]) -> Vec<Complex64> {
        let n = self.nss;
        let coeff = mode.coefficient();
        let mut out = vec![Complex64::ZERO; freqs_hz.len() * n * n];
        for (p, &f) in freqs_hz.iter().enumerate() {
            let block = &mut out[p * n * n..(p + 1) * n * n];
            for (e, ray) in block.iter_mut().zip(self.direct.iter()) {
                *e = ray.at(f);
            }
            for ray in &self.env {
                let rot = Complex64::from_polar(
                    1.0,
                    -2.0 * core::f64::consts::PI * f * ray.delay,
                );
                for (e, g) in block.iter_mut().zip(ray.gains.iter()) {
                    *e += *g * rot;
                }
            }
            if let Some(tag) = &self.tag {
                if coeff != Complex64::ZERO {
                    let rot = coeff
                        * Complex64::from_polar(
                            1.0,
                            -2.0 * core::f64::consts::PI * f * tag.delay,
                        );
                    for (j, uj) in tag.u.iter().enumerate() {
                        for (i, vi) in tag.v.iter().enumerate() {
                            block[j * n + i] += *uj * *vi * rot; // lint:allow(panic_path) u and v both hold n factors, block is n*n
                        }
                    }
                }
            }
        }
        out
    }

    /// The channel matrices on every occupied subcarrier of `layout`.
    pub fn response(&self, mode: TagMode, layout: &SubcarrierLayout) -> Vec<Complex64> {
        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|pos| layout.freq_offset_hz(pos))
            .collect();
        self.response_at(mode, &freqs)
    }

    /// Mean Frobenius displacement `‖H(a) − H(b)‖_F / √(nss²)` between
    /// two tag modes, averaged across subcarriers — the matrix analogue
    /// of [`Link::tag_delta_magnitude`](crate::Link::tag_delta_magnitude).
    pub fn tag_delta_magnitude(
        &self,
        a: TagMode,
        b: TagMode,
        layout: &SubcarrierLayout,
    ) -> f64 {
        let ha = self.response(a, layout);
        let hb = self.response(b, layout);
        let sum: f64 = ha
            .iter()
            .zip(hb.iter())
            .map(|(&x, &y)| (x - y).norm_sqr())
            .sum();
        (sum / ha.len() as f64).sqrt()
    }

    /// Mean per-RX-antenna link SNR in dB (direct + environmental power
    /// over noise) — the pre-equalisation figure.
    pub fn snr_db(&self) -> f64 {
        let n = self.nss as f64;
        let mut sig = self.direct.iter().map(|r| r.amplitude.norm_sqr()).sum::<f64>();
        for ray in &self.env {
            sig += ray.gains.iter().map(|g| g.norm_sqr()).sum::<f64>();
        }
        10.0 * ((sig / n) / self.noise_var).log10()
    }

    /// Advance environment time by `dt`: each environmental ray's gains
    /// random-walk in phase with the configured coherence time. The
    /// rotation is common to all antenna pairs of a ray (the scatterer
    /// moves; the array geometry does not), preserving ρ.
    pub fn advance(&mut self, dt: Duration) {
        let sigma = core::f64::consts::TAU
            * (dt.as_secs_f64() / self.cfg.link.coherence_time_s).sqrt()
            * 0.5;
        for ray in &mut self.env {
            let rot = Complex64::from_polar(1.0, self.rng.normal(0.0, sigma));
            for g in &mut ray.gains {
                *g *= rot;
            }
        }
    }

    /// Measured post-equalisation SNR per stream (dB, length `k`) when
    /// operating `k ≤ nss` spatial streams through this channel with
    /// equaliser `eq`. For each subcarrier the top-left `k×k` submatrix
    /// of `H` (the first `k` RF chains at each end) is equalised and the
    /// per-stream signal-to-(noise + residual-interference) ratio is
    /// accumulated; subcarriers where the submatrix is singular count as
    /// zero SNR. This is what [`MimoLink::best_mcs`] rates against —
    /// replacing the +3 dB/stream bookkeeping heuristic with the actual
    /// separation cost of this channel.
    pub fn post_eq_snr_db(&self, k: usize, eq: MimoEqualiser, layout: &SubcarrierLayout) -> Vec<f64> {
        assert!((1..=self.nss).contains(&k), "1..={} streams, got {k}", self.nss);
        let h_full = self.response(TagMode::Absent, layout);
        let n = self.nss;
        let n_pos = layout.n_occupied();
        let mut acc = vec![0.0f64; k];
        let mut hsub = [Complex64::ZERO; 16];
        let mut w = [Complex64::ZERO; 16];
        for pos in 0..n_pos {
            let block = &h_full[pos * n * n..(pos + 1) * n * n];
            for j in 0..k {
                for i in 0..k {
                    hsub[j * k + i] = block[j * n + i]; // lint:allow(panic_path) j,i < k <= n; hsub is MAX*MAX, block is n*n
                }
            }
            if !eq.weights(&hsub[..k * k], k, self.noise_var, &mut w) {
                continue; // singular: contributes zero SNR on this tone
            }
            for (si, a) in acc.iter_mut().enumerate() {
                let mut sig = 0.0;
                let mut isi = 0.0;
                for m in 0..k {
                    // (W·H)[si][m]
                    let mut wh = Complex64::ZERO;
                    for j in 0..k {
                        wh += w[si * k + j] * hsub[j * k + m]; // lint:allow(panic_path) si,j,m < k; w and hsub are MAX*MAX with k <= MAX
                    }
                    if m == si {
                        sig = wh.norm_sqr();
                    } else {
                        isi += wh.norm_sqr();
                    }
                }
                let nz: f64 = (0..k).map(|j| w[si * k + j].norm_sqr()).sum::<f64>() // lint:allow(panic_path) si,j < k; w is MAX*MAX with k <= MAX
                    * self.noise_var;
                *a += sig / (isi + nz);
            }
        }
        acc.iter()
            .map(|&s| 10.0 * (s / n_pos as f64).max(1e-30).log10())
            .collect()
    }

    /// Highest-throughput HT MCS (any stream count this array supports)
    /// whose *single-stream* SNR requirement clears the **measured**
    /// worst-stream post-equalisation SNR by `margin_db` — the
    /// rate/stream selection a MIMO querier runs. Unlike the scalar
    /// [`Link::best_mcs`](crate::Link::best_mcs) (and unlike
    /// [`Mcs::required_snr_db`]'s +3 dB/stream bookkeeping), the
    /// multi-stream penalty here is whatever ZF/MMSE actually costs on
    /// this channel.
    pub fn best_mcs(&self, margin_db: f64, eq: MimoEqualiser, bw: Bandwidth) -> Mcs {
        let layout = SubcarrierLayout::new(bw);
        let mut best = Mcs::ht(0);
        let mut best_rate = best.data_rate_bps(bw, GuardInterval::Long);
        for k in 1..=self.nss.min(4) {
            let snrs = self.post_eq_snr_db(k, eq, &layout);
            let worst = snrs.iter().cloned().fold(f64::INFINITY, f64::min);
            for idx in 0..8 {
                let m = Mcs::ht((k - 1) * 8 + idx);
                if Mcs::ht(idx).required_snr_db() + margin_db <= worst {
                    let rate = m.data_rate_bps(bw, GuardInterval::Long);
                    if rate > best_rate {
                        best = m;
                        best_rate = rate;
                    }
                }
            }
        }
        best
    }

    /// Pass a PPDU through the matrix channel with the given tag
    /// schedule: `y_j = Σ_i H_ji·x_i + AWGN` per subcarrier, with
    /// Poisson interference bursts as in the scalar link. The PPDU's
    /// stream count must match the array size. The tag holds
    /// `schedule.ltf` across the entire training field (it cannot see
    /// HT-LTF symbol boundaries).
    pub fn apply_ppdu(&mut self, ppdu: &Ppdu, schedule: &TagSchedule) -> Ppdu {
        let n = self.nss;
        let layout = ppdu.config.layout();
        assert_eq!(
            ppdu.config.mcs.spatial_streams, n,
            "PPDU stream count must match the array"
        );
        assert!(
            schedule.data.len() >= ppdu.symbols.len(),
            "schedule covers {} symbols, PPDU has {}",
            schedule.data.len(),
            ppdu.symbols.len()
        );

        // Interference bursts overlapping this PPDU (Poisson arrivals),
        // hitting every RX antenna (co-channel energy is not spatially
        // white, but one burst does land on the whole array).
        let airtime = ppdu.airtime().as_secs_f64();
        let sym_dur = ppdu.config.guard.symbol_duration().as_secs_f64();
        let preamble = ppdu.config.preamble_duration().as_secs_f64();
        let mut bursts: Vec<(f64, f64)> = Vec::new();
        if self.cfg.link.interference_rate_hz > 0.0 {
            let mut t = self.rng.exponential(self.cfg.link.interference_rate_hz);
            while t < airtime {
                let d = self
                    .rng
                    .exponential(1.0 / self.cfg.link.interference_duration_s);
                bursts.push((t, t + d));
                t += d + self.rng.exponential(self.cfg.link.interference_rate_hz);
            }
        }
        let sig_power =
            self.direct.iter().map(|r| r.amplitude.norm_sqr()).sum::<f64>() / n as f64;
        let intf_var = sig_power * db_to_linear(self.cfg.link.interference_rel_db);
        let overlaps = |lo: f64, hi: f64| bursts.iter().any(|&(a, b)| a < hi && b > lo);

        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|pos| layout.freq_offset_hz(pos))
            .collect();
        let h_ltf = self.response_at(schedule.ltf, &freqs);
        let h_data: Vec<Vec<Complex64>> = (0..ppdu.symbols.len())
            .map(|i| self.response_at(schedule.data[i], &freqs))
            .collect();

        let noise_std = (self.noise_var / 2.0).sqrt();
        let rng = &mut self.rng;
        let mut mix = |sym: &OfdmSymbol, h: &[Complex64], extra_var: f64| -> OfdmSymbol {
            let extra_std = (extra_var / 2.0).sqrt();
            let n_pos = freqs.len();
            let streams = (0..n)
                .map(|j| {
                    (0..n_pos)
                        .map(|pos| {
                            let mut y = Complex64::ZERO;
                            for (i, s) in sym.streams.iter().enumerate() {
                                y += h[pos * n * n + j * n + i] * s[pos]; // lint:allow(panic_path) nss asserted == n, h holds n_pos*n*n entries
                            }
                            y += c64(rng.gaussian() * noise_std, rng.gaussian() * noise_std);
                            if extra_var > 0.0 {
                                y += c64(
                                    rng.gaussian() * extra_std,
                                    rng.gaussian() * extra_std,
                                );
                            }
                            y
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            OfdmSymbol { streams }
        };

        let ltf_intf = if overlaps(0.0, preamble) { intf_var } else { 0.0 };
        let ltfs: Vec<OfdmSymbol> = ppdu.ltfs.iter().map(|s| mix(s, &h_ltf, ltf_intf)).collect();
        let mut symbols = Vec::with_capacity(ppdu.symbols.len());
        for (i, sym) in ppdu.symbols.iter().enumerate() {
            let lo = preamble + i as f64 * sym_dur;
            let extra = if overlaps(lo, lo + sym_dur) { intf_var } else { 0.0 };
            symbols.push(mix(sym, &h_data[i], extra));
        }

        Ppdu {
            config: ppdu.config.clone(),
            psdu_len: ppdu.psdu_len,
            ltfs,
            symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witag_phy::ppdu::{transmit, PhyConfig};
    use witag_phy::receiver::receive;

    fn quiet_cfg() -> MimoLinkConfig {
        MimoLinkConfig {
            link: LinkConfig {
                interference_rate_hz: 0.0,
                ..MimoLinkConfig::rich_scattering().link
            },
            ..MimoLinkConfig::rich_scattering()
        }
    }

    fn testbed_link(nss: usize, tag: Option<Point2>, seed: u64) -> MimoLink {
        let fp = Floorplan::paper_testbed();
        MimoLink::new(
            &fp,
            Floorplan::los_client_position(),
            Floorplan::ap_position(),
            tag,
            nss,
            quiet_cfg(),
            seed,
        )
    }

    #[test]
    fn same_seed_reproduces_matrices_bitwise() {
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let a = testbed_link(3, Some(Point2::new(2.0, 3.5)), 7);
        let b = testbed_link(3, Some(Point2::new(2.0, 3.5)), 7);
        assert_eq!(
            a.response(TagMode::Phase0, &layout),
            b.response(TagMode::Phase0, &layout)
        );
    }

    #[test]
    fn tag_flip_perturbs_every_matrix_entry() {
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let link = testbed_link(2, Some(Point2::new(2.0, 3.5)), 9);
        let h0 = link.response(TagMode::Phase0, &layout);
        let h1 = link.response(TagMode::Phase180, &layout);
        for (e0, e1) in h0.iter().zip(h1.iter()) {
            assert!(
                (*e0 - *e1).abs() > 0.0,
                "a single reflector must move every H entry"
            );
        }
    }

    #[test]
    fn tag_delta_is_exactly_rank_one() {
        // ΔH = H(0°) − H(180°) = 2·(tag ray): det(ΔH) must vanish for the
        // 2×2 case on every subcarrier (up to float noise).
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let link = testbed_link(2, Some(Point2::new(2.0, 3.5)), 11);
        let h0 = link.response(TagMode::Phase0, &layout);
        let h1 = link.response(TagMode::Phase180, &layout);
        for pos in 0..layout.n_occupied() {
            let d: Vec<Complex64> = (0..4)
                .map(|k| h0[pos * 4 + k] - h1[pos * 4 + k])
                .collect();
            let det = d[0] * d[3] - d[1] * d[2];
            let scale = d.iter().map(|e| e.norm_sqr()).sum::<f64>();
            assert!(
                det.abs() <= 1e-9 * scale.max(1e-300),
                "pos {pos}: det {det:?} vs scale {scale}"
            );
        }
    }

    #[test]
    fn multi_stream_decode_through_nondiagonal_channel() {
        // MCS 8–23 (2 and 3 streams) survive a real scattering channel
        // end-to-end with both equalisers.
        for &idx in &[8usize, 15, 16, 23] {
            let mcs = Mcs::ht(idx);
            for eq in [MimoEqualiser::Zf, MimoEqualiser::Mmse] {
                let mut link = testbed_link(mcs.spatial_streams, None, 20 + idx as u64);
                let mut config = PhyConfig::new(mcs);
                config.equaliser = eq;
                let psdu = vec![0xA7u8; 96];
                let tx = transmit(&config, &psdu);
                let schedule = TagSchedule::constant(TagMode::Absent, tx.symbols.len());
                let rx = link.apply_ppdu(&tx, &schedule);
                let decoded = receive(&rx, link.noise_var());
                assert_eq!(
                    decoded.bytes, psdu,
                    "MCS {idx} via {} must decode over quiet scattering link",
                    eq.name()
                );
            }
        }
    }

    #[test]
    fn stream_count_heuristic_matches_measured_penalty() {
        // Mcs::required_snr_db budgets +3 dB per extra stream. Measure
        // the real separation cost on scattering channels: the worst
        // stream's post-equalisation SNR sits below the link's raw
        // per-antenna SNR by a penalty that must be positive (separation
        // is never free) and of the heuristic's order. (Comparing
        // against the single 1×1 pair instead would be misleading — a
        // 2×2 equaliser also buys receive diversity, so that difference
        // can go negative on fade-prone pairs.)
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let mut penalties = Vec::new();
        for seed in 0..8u64 {
            let link = testbed_link(2, None, 40 + seed);
            let s2 = link
                .post_eq_snr_db(2, MimoEqualiser::Mmse, &layout)
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            penalties.push(link.snr_db() - s2);
        }
        let lo = penalties.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = penalties.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = penalties.iter().sum::<f64>() / penalties.len() as f64;
        assert!(lo > 0.0, "second stream must cost SNR, min penalty {lo} dB");
        assert!(
            mean > 1.0 && mean < 15.0,
            "mean measured penalty {mean} dB should be the +3 dB heuristic's order"
        );
        assert!(
            lo - 1.0 < 3.0 && 3.0 < hi + 1.0,
            "the +3 dB constant should sit inside the measured envelope [{lo}, {hi}]"
        );
    }

    #[test]
    fn best_mcs_goes_multi_stream_on_strong_links() {
        let link = testbed_link(3, None, 70);
        let m = link.best_mcs(3.0, MimoEqualiser::Mmse, Bandwidth::Mhz20);
        assert!(
            m.spatial_streams >= 2,
            "a ~50 dB scattering link should multiplex, picked {m:?}"
        );
        // And the pick must actually be decodable: its single-stream SNR
        // requirement clears the measured worst stream.
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let snrs = link.post_eq_snr_db(m.spatial_streams, MimoEqualiser::Mmse, &layout);
        let worst = snrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let base = Mcs {
            spatial_streams: 1,
            ..m
        };
        assert!(base.required_snr_db() + 3.0 <= worst);
    }

    #[test]
    fn advance_preserves_ray_power() {
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let mut link = testbed_link(2, None, 80);
        let p0: f64 = link
            .response(TagMode::Absent, &layout)
            .iter()
            .map(|h| h.norm_sqr())
            .sum();
        link.advance(Duration::millis(50));
        let p1: f64 = link
            .response(TagMode::Absent, &layout)
            .iter()
            .map(|h| h.norm_sqr())
            .sum();
        // Phase random-walk moves the sum around (rays re-interfere) but
        // the per-ray powers are unchanged; totals stay the same order.
        assert!(p1 > p0 * 0.05 && p1 < p0 * 20.0);
    }
}
