//! The link channel model: geometric multipath + switchable tag reflector
//! + noise + ambient interference.
//!
//! A [`Link`] models one TX→RX wireless channel inside a floorplan as a
//! sum of rays:
//!
//! * the **direct path**, with free-space loss plus any obstacle
//!   penetration losses along the straight line (NLOS),
//! * **environmental rays** bounced off floorplan reflectors (walls,
//!   cabinets) — these give the channel its frequency selectivity and,
//!   via slow phase drift, its temporal dynamics (people moving around,
//!   coherence time ≈ 100 ms per the paper's footnote 2),
//! * optionally the **tag ray**: TX → tag → RX, whose complex amplitude
//!   follows the radar-equation 1/(Ds·Dr) field dependence (paper §6.2)
//!   and whose sign/presence is switched *per OFDM symbol* by a
//!   [`TagSchedule`] — this is the backscatter modulation.
//!
//! Everything is evaluated per subcarrier: `h[k] = Σ_p a_p·e^{−j2πf_k τ_p}`,
//! which is what makes the tag's contribution frequency-selective (a real
//! channel change) rather than a common phase rotation that pilot tracking
//! could undo.

use crate::pathloss::{
    backscatter_amplitude, db_to_linear, dbm_to_mw, freespace_amplitude, noise_floor_dbm,
    SPEED_OF_LIGHT,
};
use witag_phy::complex::{c64, Complex64};
use witag_phy::mcs::Mcs;
use witag_phy::params::SubcarrierLayout;
use witag_phy::ppdu::{OfdmSymbol, Ppdu};
use witag_sim::geom::{Floorplan, Point2};
use witag_sim::rng::Rng;
use witag_sim::time::Duration;

/// The state of the tag's RF switch during one OFDM symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagMode {
    /// No tag present at all.
    #[default]
    Absent,
    /// Antenna open-circuited: non-reflective (paper §5.1).
    OpenCircuit,
    /// Antenna short-circuited: reflective (paper §5.1).
    ShortCircuit,
    /// Always-reflecting tag, 0° phase path (paper §5.2).
    Phase0,
    /// Always-reflecting tag, 180° phase path (paper §5.2).
    Phase180,
}

impl TagMode {
    /// Multiplier applied to the geometric tag ray.
    pub(crate) fn coefficient(self) -> Complex64 {
        match self {
            TagMode::Absent | TagMode::OpenCircuit => Complex64::ZERO,
            TagMode::ShortCircuit | TagMode::Phase0 => Complex64::ONE,
            TagMode::Phase180 => c64(-1.0, 0.0),
        }
    }
}

/// Per-symbol tag switch states for one PPDU.
#[derive(Debug, Clone)]
pub struct TagSchedule {
    /// Mode during the preamble / LTF (channel estimation window). WiTAG
    /// holds a *constant* state here so the estimate is clean (paper §5.1:
    /// non-reflective during estimation; §5.2: reflecting at 0°).
    pub ltf: TagMode,
    /// Mode during each DATA symbol.
    pub data: Vec<TagMode>,
}

impl TagSchedule {
    /// A schedule with the same mode everywhere (tag idle / absent).
    pub fn constant(mode: TagMode, n_symbols: usize) -> Self {
        TagSchedule {
            ltf: mode,
            data: vec![mode; n_symbols],
        }
    }
}

/// One propagation ray.
#[derive(Debug, Clone, Copy)]
struct Ray {
    /// Complex field amplitude at the carrier (includes carrier phase).
    amplitude: Complex64,
    /// Excess propagation delay in seconds.
    delay: f64,
}

impl Ray {
    /// Per-subcarrier contribution at baseband offset `f` Hz.
    fn at(&self, f: f64) -> Complex64 {
        self.amplitude * Complex64::from_polar(1.0, -2.0 * core::f64::consts::PI * f * self.delay)
    }
}

/// Radio and environment parameters for a link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Carrier frequency (Hz). Default: 2.437 GHz (channel 6).
    pub carrier_hz: f64,
    /// Transmit power (dBm). Default 15 dBm — typical client NIC.
    pub tx_power_dbm: f64,
    /// Receiver noise figure (dB).
    pub noise_figure_db: f64,
    /// Receiver bandwidth (Hz) for the noise floor.
    pub bandwidth_hz: f64,
    /// Number of environmental multipath rays to synthesise (in addition
    /// to any floorplan reflectors).
    pub n_env_rays: usize,
    /// Mean power of an environmental ray relative to the direct path (dB,
    /// negative).
    pub env_ray_rel_db: f64,
    /// Channel coherence time (s); the paper's footnote 2 cites ≈ 100 ms
    /// for indoor WiFi.
    pub coherence_time_s: f64,
    /// Ambient interference bursts (microwave ovens, co-channel WiFi…):
    /// Poisson arrival rate (1/s). These are what keep the ambient
    /// subframe error rate above zero (paper §4.1: "we can never
    /// guarantee an error rate of zero").
    pub interference_rate_hz: f64,
    /// Mean interference burst duration (s).
    pub interference_duration_s: f64,
    /// Interference power relative to the *received* signal (dB).
    pub interference_rel_db: f64,
    /// Tag scatterer field gain `g` (antenna gain², re-radiation
    /// efficiency and RCS folded into one calibration constant; see
    /// EXPERIMENTS.md for the calibration).
    pub tag_field_gain: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            carrier_hz: 2.437e9,
            tx_power_dbm: 15.0,
            noise_figure_db: 7.0,
            bandwidth_hz: 20e6,
            n_env_rays: 6,
            env_ray_rel_db: -18.0,
            coherence_time_s: 0.1,
            interference_rate_hz: 16.0,
            interference_duration_s: 500e-6,
            interference_rel_db: 3.0,
            // Calibration constant (antenna gain² × re-radiation
            // efficiency, e.g. a 3 dBi resonant patch at ~9 % scattering
            // efficiency): 0.35 puts the phase-flip channel displacement
            // at the level where 64-QAM 2/3 subframes corrupt reliably
            // near the link endpoints but marginally at the midpoint —
            // the paper's Figure 5 regime. See EXPERIMENTS.md for the
            // calibration sweep.
            tag_field_gain: 0.30,
        }
    }
}

/// A TX→RX channel with an optional backscatter tag in the environment.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    direct: Ray,
    env: Vec<Ray>,
    /// Geometric tag ray (before the switch coefficient).
    tag: Option<Ray>,
    /// Additional tag rays (multi-tag deployments); each entry is a
    /// further tag's geometric ray, controlled independently via
    /// [`Link::apply_ppdu_multi`].
    extra_tags: Vec<Ray>,
    /// TX→tag and tag→RX distances (diagnostics & tests).
    tag_distances: Option<(f64, f64)>,
    /// Field amplitude of the TX→tag hop (for the tag's envelope
    /// detector).
    tag_incident_amplitude: f64,
    /// Complex noise variance per subcarrier relative to unit TX power.
    noise_var: f64,
    /// Coherence-time divisor (fault injection: coherence collapse).
    /// 1.0 = the configured coherence time; larger = faster fading.
    coherence_scale: f64,
    rng: Rng,
}

impl Link {
    /// Build a link inside `floorplan` from `tx` to `rx`, with an optional
    /// tag at `tag_pos`.
    pub fn new(
        floorplan: &Floorplan,
        tx: Point2,
        rx: Point2,
        tag_pos: Option<Point2>,
        cfg: LinkConfig,
        seed: u64,
    ) -> Self {
        Self::new_multi(floorplan, tx, rx, tag_pos, &[], cfg, seed)
    }

    /// [`Link::new`] with additional tags in the environment. The primary
    /// tag (`tag_pos`) is the one single-tag APIs control; the extras are
    /// driven via [`Link::apply_ppdu_multi`].
    pub fn new_multi(
        floorplan: &Floorplan,
        tx: Point2,
        rx: Point2,
        tag_pos: Option<Point2>,
        extra_tag_positions: &[Point2],
        cfg: LinkConfig,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let f = cfg.carrier_hz;

        // Direct path.
        let d = tx.distance(rx);
        let pen_db = floorplan.penetration_loss_db(tx, rx);
        let direct_amp = freespace_amplitude(d, f) * db_to_linear(-pen_db).sqrt();
        let direct = Ray {
            amplitude: Complex64::from_polar(
                direct_amp,
                -2.0 * core::f64::consts::PI * f * (d / SPEED_OF_LIGHT),
            ),
            delay: 0.0, // delays are excess over the direct path
        };
        let direct_delay = d / SPEED_OF_LIGHT;

        // Environmental rays: floorplan reflectors first, synthetic extras
        // after, all with random phases and a spread around the configured
        // mean relative power.
        let mut env = Vec::new();
        let mut reflector_points: Vec<Point2> = floorplan.reflectors.clone();
        while reflector_points.len() < cfg.n_env_rays {
            // Synthetic scatterer somewhere in the vicinity of the link.
            let t = rng.f64();
            let base = tx.lerp(rx, t);
            reflector_points.push(Point2::new(
                base.x + rng.range_f64(-4.0, 4.0),
                base.y + rng.range_f64(-4.0, 4.0),
            ));
        }
        for p in reflector_points.iter().take(cfg.n_env_rays.max(floorplan.reflectors.len())) {
            let path_len = tx.distance(*p) + p.distance(rx);
            let rel_db = cfg.env_ray_rel_db + rng.normal(0.0, 3.0);
            let amp = direct_amp * db_to_linear(rel_db).sqrt();
            env.push(Ray {
                amplitude: Complex64::from_polar(amp, rng.range_f64(0.0, core::f64::consts::TAU)),
                delay: (path_len / SPEED_OF_LIGHT) - direct_delay,
            });
        }

        // Tag ray.
        let make_tag_ray = |p: Point2| -> (Ray, (f64, f64), f64) {
            let ds = tx.distance(p);
            let dr = p.distance(rx);
            // Penetration on each hop.
            let pen =
                floorplan.penetration_loss_db(tx, p) + floorplan.penetration_loss_db(p, rx);
            let amp = backscatter_amplitude(ds, dr, f, cfg.tag_field_gain)
                * db_to_linear(-pen).sqrt();
            let delay = ((ds + dr) / SPEED_OF_LIGHT) - direct_delay;
            let ray = Ray {
                amplitude: Complex64::from_polar(
                    amp,
                    -2.0 * core::f64::consts::PI * f * (ds + dr) / SPEED_OF_LIGHT,
                ),
                delay,
            };
            let incident = freespace_amplitude(ds, f)
                * db_to_linear(-floorplan.penetration_loss_db(tx, p)).sqrt();
            (ray, (ds, dr), incident)
        };
        let (tag, tag_distances, tag_incident_amplitude) = match tag_pos {
            Some(p) => {
                let (ray, dists, incident) = make_tag_ray(p);
                (Some(ray), Some(dists), incident)
            }
            None => (None, None, 0.0),
        };
        let extra_tags: Vec<Ray> = extra_tag_positions
            .iter()
            .map(|&p| make_tag_ray(p).0)
            .collect();

        // Noise relative to unit TX power.
        let noise_mw = dbm_to_mw(noise_floor_dbm(cfg.bandwidth_hz, cfg.noise_figure_db));
        let tx_mw = dbm_to_mw(cfg.tx_power_dbm);
        let noise_var = noise_mw / tx_mw;

        Link {
            cfg,
            direct,
            env,
            tag,
            extra_tags,
            tag_distances,
            tag_incident_amplitude,
            noise_var,
            coherence_scale: 1.0,
            rng,
        }
    }

    /// Divide the effective coherence time by `scale` (fault injection:
    /// a coherence collapse — doors slamming, machinery moving through
    /// the Fresnel zone). `1.0` restores the configured dynamics; the
    /// nominal path is bit-identical to a link without the hook.
    pub fn set_coherence_scale(&mut self, scale: f64) {
        self.coherence_scale = scale.max(1e-9);
    }

    /// The channel's complex response at arbitrary baseband frequencies
    /// for a given tag switch state.
    pub fn response_at(&self, mode: TagMode, freqs_hz: &[f64]) -> Vec<Complex64> {
        let extras = vec![mode; self.extra_tags.len()];
        self.response_at_multi(mode, &extras, freqs_hz)
    }

    /// Like [`Link::response_at`], with independent switch states for the
    /// primary tag and each extra tag.
    pub fn response_at_multi(
        &self,
        mode: TagMode,
        extra_modes: &[TagMode],
        freqs_hz: &[f64],
    ) -> Vec<Complex64> {
        assert_eq!(
            extra_modes.len(),
            self.extra_tags.len(),
            "one mode per extra tag"
        );
        let tag_coeff = mode.coefficient();
        freqs_hz
            .iter()
            .map(|&f| {
                let mut h = self.direct.at(f);
                for ray in &self.env {
                    h += ray.at(f);
                }
                if let Some(tag) = &self.tag {
                    h += tag.at(f) * tag_coeff;
                }
                for (ray, m) in self.extra_tags.iter().zip(extra_modes.iter()) {
                    h += ray.at(f) * m.coefficient();
                }
                h
            })
            .collect()
    }

    /// The channel's complex response on every occupied subcarrier for a
    /// given tag switch state.
    pub fn response(&self, mode: TagMode, layout: &SubcarrierLayout) -> Vec<Complex64> {
        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|pos| layout.freq_offset_hz(pos))
            .collect();
        self.response_at(mode, &freqs)
    }

    /// Mean |Δh| between two tag modes across subcarriers — the channel
    /// displacement the paper's Figure 3 illustrates.
    pub fn tag_delta_magnitude(
        &self,
        a: TagMode,
        b: TagMode,
        layout: &SubcarrierLayout,
    ) -> f64 {
        let ha = self.response(a, layout);
        let hb = self.response(b, layout);
        ha.iter()
            .zip(hb.iter())
            .map(|(&x, &y)| (x - y).abs())
            .sum::<f64>()
            / ha.len() as f64
    }

    /// Per-subcarrier noise variance relative to unit TX power.
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Link SNR if the receiver opened a different bandwidth: the noise
    /// floor grows 3 dB per doubling, the signal does not (the query's
    /// energy is spread, not increased). Used by the query designer when
    /// sweeping 40/80 MHz operation.
    pub fn snr_db_at(&self, bandwidth_hz: f64) -> f64 {
        self.snr_db() - 10.0 * (bandwidth_hz / self.cfg.bandwidth_hz).log10()
    }

    /// Link SNR in dB (direct + environmental power over noise).
    pub fn snr_db(&self) -> f64 {
        let sig = self.direct.amplitude.norm_sqr()
            + self.env.iter().map(|r| r.amplitude.norm_sqr()).sum::<f64>();
        10.0 * (sig / self.noise_var).log10()
    }

    /// Received power at the tag (dBm) during a symbol with mean TX power
    /// `sym_power` (relative to 1.0) — drives the envelope detector.
    pub fn tag_incident_dbm(&self, sym_power: f64) -> f64 {
        self.cfg.tx_power_dbm
            + 10.0 * (self.tag_incident_amplitude.powi(2) * sym_power.max(1e-12)).log10()
    }

    /// TX→tag / tag→RX distances, if a tag is present.
    pub fn tag_distances(&self) -> Option<(f64, f64)> {
        self.tag_distances
    }

    /// Highest HT MCS (0–7, single stream) whose SNR requirement clears
    /// this link's SNR by `margin_db` — the querier's rate selection
    /// (paper §4.1). A `Link` models one antenna pair, so single-stream
    /// picks are all it can justify; on an antenna array use
    /// [`crate::MimoLink::best_mcs`], which rates multi-stream MCS
    /// indices (8–31) from the measured post-equalisation SNR.
    pub fn best_mcs(&self, margin_db: f64) -> Mcs {
        let snr = self.snr_db();
        let mut best = 0usize;
        for idx in 0..8 {
            if Mcs::ht(idx).required_snr_db() + margin_db <= snr {
                best = idx;
            }
        }
        Mcs::ht(best)
    }

    /// Advance environment time by `dt`: environmental ray phases random-
    /// walk with the configured coherence time (people moving, doors…).
    pub fn advance(&mut self, dt: Duration) {
        let sigma = core::f64::consts::TAU
            * (dt.as_secs_f64() / self.cfg.coherence_time_s).sqrt()
            * 0.5
            * self.coherence_scale.sqrt();
        for ray in &mut self.env {
            let dphi = self.rng.normal(0.0, sigma);
            ray.amplitude *= Complex64::from_polar(1.0, dphi);
        }
    }

    /// Pass a PPDU through the channel with the given tag schedule,
    /// returning what the receiver sees (channel applied + noise +
    /// interference bursts). `schedule.data` must cover every DATA symbol.
    pub fn apply_ppdu(&mut self, ppdu: &Ppdu, schedule: &TagSchedule) -> Ppdu {
        let extras: Vec<TagSchedule> = self
            .extra_tags
            .iter()
            .map(|_| TagSchedule::constant(TagMode::Absent, ppdu.symbols.len()))
            .collect();
        let refs: Vec<&TagSchedule> = extras.iter().collect();
        self.apply_ppdu_multi(ppdu, schedule, &refs)
    }

    /// [`Link::apply_ppdu`] with independent schedules for the extra tags
    /// (multi-tag deployments: collisions, addressing).
    pub fn apply_ppdu_multi(
        &mut self,
        ppdu: &Ppdu,
        schedule: &TagSchedule,
        extra_schedules: &[&TagSchedule],
    ) -> Ppdu {
        let layout = ppdu.config.layout();
        assert!(
            schedule.data.len() >= ppdu.symbols.len(),
            "schedule covers {} symbols, PPDU has {}",
            schedule.data.len(),
            ppdu.symbols.len()
        );

        // Interference bursts overlapping this PPDU (Poisson arrivals).
        let airtime = ppdu.airtime().as_secs_f64();
        let sym_dur = ppdu.config.guard.symbol_duration().as_secs_f64();
        let preamble = ppdu.config.preamble_duration().as_secs_f64();
        let mut bursts: Vec<(f64, f64)> = Vec::new();
        if self.cfg.interference_rate_hz > 0.0 {
            let mut t = self.rng.exponential(self.cfg.interference_rate_hz);
            while t < airtime {
                let d = self.rng.exponential(1.0 / self.cfg.interference_duration_s);
                bursts.push((t, t + d));
                t += d + self.rng.exponential(self.cfg.interference_rate_hz);
            }
        }
        let sig_power = self.direct.amplitude.norm_sqr();
        let intf_var = sig_power * db_to_linear(self.cfg.interference_rel_db);
        let overlaps = |lo: f64, hi: f64| bursts.iter().any(|&(a, b)| a < hi && b > lo);

        assert_eq!(
            extra_schedules.len(),
            self.extra_tags.len(),
            "one schedule per extra tag"
        );
        for s in extra_schedules {
            assert!(s.data.len() >= ppdu.symbols.len(), "extra schedule too short");
        }
        // Precompute per-symbol channel responses (immutable borrows),
        // then apply noise (mutable RNG borrow) in a second pass.
        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|pos| layout.freq_offset_hz(pos))
            .collect();
        let ltf_extra_modes: Vec<TagMode> = extra_schedules.iter().map(|s| s.ltf).collect();
        let h_ltf = self.response_at_multi(schedule.ltf, &ltf_extra_modes, &freqs);
        let h_data: Vec<Vec<Complex64>> = (0..ppdu.symbols.len())
            .map(|i| {
                let modes: Vec<TagMode> =
                    extra_schedules.iter().map(|s| s.data[i]).collect();
                self.response_at_multi(schedule.data[i], &modes, &freqs)
            })
            .collect();

        let noise_std = (self.noise_var / 2.0).sqrt();
        let rng = &mut self.rng;
        let mut noisy = |carriers: &[Complex64], h: &[Complex64], extra_var: f64| {
            let extra_std = (extra_var / 2.0).sqrt();
            carriers
                .iter()
                .zip(h.iter())
                .map(|(&x, &hc)| {
                    let mut y =
                        x * hc + c64(rng.gaussian() * noise_std, rng.gaussian() * noise_std);
                    if extra_var > 0.0 {
                        y += c64(rng.gaussian() * extra_std, rng.gaussian() * extra_std);
                    }
                    y
                })
                .collect::<Vec<_>>()
        };

        // LTF symbols: channel in the schedule's LTF mode (the tag holds
        // one state across the whole training field — it cannot see
        // training-symbol boundaries). Interference during the preamble
        // corrupts the estimate itself.
        let ltf_intf = if overlaps(0.0, preamble) { intf_var } else { 0.0 };
        let ltfs: Vec<OfdmSymbol> = ppdu
            .ltfs
            .iter()
            .map(|sym| OfdmSymbol {
                streams: sym
                    .streams
                    .iter()
                    .map(|s| noisy(s, &h_ltf, ltf_intf))
                    .collect(),
            })
            .collect();

        // DATA symbols.
        let mut symbols = Vec::with_capacity(ppdu.symbols.len());
        for (i, sym) in ppdu.symbols.iter().enumerate() {
            let lo = preamble + i as f64 * sym_dur;
            let extra = if overlaps(lo, lo + sym_dur) { intf_var } else { 0.0 };
            symbols.push(OfdmSymbol {
                streams: sym
                    .streams
                    .iter()
                    .map(|s| noisy(s, &h_data[i], extra))
                    .collect(),
            });
        }

        Ppdu {
            config: ppdu.config.clone(),
            psdu_len: ppdu.psdu_len,
            ltfs,
            symbols,
        }
    }

    /// Pass a legacy (non-HT) PPDU through the channel with the tag held
    /// in a constant state — how control responses like block ACKs travel.
    /// Short control frames get AWGN only (an interference burst hitting
    /// the 32 µs BA is folded into the data-frame interference process).
    pub fn apply_legacy(
        &mut self,
        ppdu: &witag_phy::legacy::LegacyPpdu,
        mode: TagMode,
    ) -> witag_phy::legacy::LegacyPpdu {
        let layout = witag_phy::legacy::LegacyLayout::cached();
        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|pos| layout.freq_offset_hz(pos))
            .collect();
        let h = self.response_at(mode, &freqs);
        let noise_std = (self.noise_var / 2.0).sqrt();
        let mut noisy = |carriers: &[Complex64]| -> Vec<Complex64> {
            carriers
                .iter()
                .zip(h.iter())
                .map(|(&x, &hc)| {
                    x * hc
                        + c64(
                            self.rng.gaussian() * noise_std,
                            self.rng.gaussian() * noise_std,
                        )
                })
                .collect()
        };
        witag_phy::legacy::LegacyPpdu {
            rate: ppdu.rate,
            psdu_len: ppdu.psdu_len,
            ltf: OfdmSymbol {
                streams: vec![noisy(&ppdu.ltf.streams[0])],
            },
            symbols: ppdu
                .symbols
                .iter()
                .map(|s| OfdmSymbol {
                    streams: vec![noisy(&s.streams[0])],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witag_phy::mcs::Mcs;
    use witag_phy::ppdu::{transmit, PhyConfig};
    use witag_phy::receiver::receive;

    fn quiet_cfg() -> LinkConfig {
        LinkConfig {
            interference_rate_hz: 0.0,
            ..LinkConfig::default()
        }
    }

    fn los_link(tag: Option<Point2>, cfg: LinkConfig, seed: u64) -> Link {
        let fp = Floorplan::paper_testbed();
        Link::new(
            &fp,
            Floorplan::los_client_position(),
            Floorplan::ap_position(),
            tag,
            cfg,
            seed,
        )
    }

    #[test]
    fn los_snr_is_high() {
        let link = los_link(None, quiet_cfg(), 1);
        let snr = link.snr_db();
        assert!(
            (40.0..65.0).contains(&snr),
            "8 m LOS at 15 dBm should be ~50 dB SNR, got {snr}"
        );
    }

    #[test]
    fn nlos_b_snr_much_lower_than_a() {
        let fp = Floorplan::paper_testbed();
        let cfg = quiet_cfg();
        let a = Link::new(
            &fp,
            Floorplan::nlos_a_client_position(),
            Floorplan::ap_position(),
            None,
            cfg.clone(),
            2,
        );
        let b = Link::new(
            &fp,
            Floorplan::nlos_b_client_position(),
            Floorplan::ap_position(),
            None,
            cfg,
            2,
        );
        // B is ~10 m further and behind heavier construction; the paper
        // still operated there, so the gap is a handful of dB, not tens.
        assert!(
            a.snr_db() > b.snr_db() + 2.0,
            "A {} dB should beat B {} dB clearly",
            a.snr_db(),
            b.snr_db()
        );
    }

    #[test]
    fn end_to_end_decode_over_quiet_channel() {
        let mut link = los_link(None, quiet_cfg(), 3);
        let mcs = link.best_mcs(3.0);
        let config = PhyConfig::new(mcs);
        let psdu = vec![0xC3u8; 64];
        let tx = transmit(&config, &psdu);
        let schedule = TagSchedule::constant(TagMode::Absent, tx.symbols.len());
        let rx = link.apply_ppdu(&tx, &schedule);
        let decoded = receive(&rx, link.noise_var());
        assert_eq!(decoded.bytes, psdu, "quiet LOS link must decode cleanly");
    }

    #[test]
    fn tag_phase_flip_corrupts_decode() {
        let tag_pos = Point2::new(1.8, 3.5); // 1 m from client at (0.8, 3.5)?? — near AP actually
        let mut link = los_link(Some(tag_pos), quiet_cfg(), 4);
        let config = PhyConfig::new(Mcs::ht(7));
        let psdu = vec![0x5Au8; 64];
        let tx = transmit(&config, &psdu);
        // Tag: 0° during LTF, flips to 180° for the whole DATA field.
        let schedule = TagSchedule {
            ltf: TagMode::Phase0,
            data: vec![TagMode::Phase180; tx.symbols.len()],
        };
        let rx = link.apply_ppdu(&tx, &schedule);
        let decoded = receive(&rx, link.noise_var());
        assert_ne!(decoded.bytes, psdu, "tag flip must corrupt the frame");

        // Control: tag holds 0° throughout -> clean decode.
        let mut link2 = los_link(Some(tag_pos), quiet_cfg(), 4);
        let idle = TagSchedule::constant(TagMode::Phase0, tx.symbols.len());
        let rx2 = link2.apply_ppdu(&tx, &idle);
        let decoded2 = receive(&rx2, link2.noise_var());
        assert_eq!(decoded2.bytes, psdu, "steady tag must not corrupt");
    }

    #[test]
    fn phase_flip_doubles_channel_displacement_vs_ook() {
        // Paper §5.2 / Figure 3: |h(0°) − h(180°)| = 2·|tag ray| while
        // |h(short) − h(open)| = |tag ray|.
        let link = los_link(Some(Point2::new(4.8, 3.5)), quiet_cfg(), 5);
        let layout = SubcarrierLayout::new(witag_phy::params::Bandwidth::Mhz20);
        let ook = link.tag_delta_magnitude(TagMode::ShortCircuit, TagMode::OpenCircuit, &layout);
        let flip = link.tag_delta_magnitude(TagMode::Phase0, TagMode::Phase180, &layout);
        assert!(
            (flip / ook - 2.0).abs() < 1e-9,
            "flip {flip} should be exactly 2× OOK {ook}"
        );
    }

    #[test]
    fn tag_displacement_minimised_at_midpoint() {
        let layout = SubcarrierLayout::new(witag_phy::params::Bandwidth::Mhz20);
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let delta_at = |frac: f64| {
            let link = los_link(Some(client.lerp(ap, frac)), quiet_cfg(), 6);
            link.tag_delta_magnitude(TagMode::Phase0, TagMode::Phase180, &layout)
        };
        let near = delta_at(0.125); // 1 m from client
        let mid = delta_at(0.5);
        let far = delta_at(0.875); // 1 m from AP
        assert!(near > mid && far > mid, "U-shape: {near} / {mid} / {far}");
    }

    #[test]
    fn coherence_scale_accelerates_decorrelation_and_is_inert_at_one() {
        let layout = SubcarrierLayout::new(witag_phy::params::Bandwidth::Mhz20);
        let mut nominal = los_link(None, quiet_cfg(), 7);
        let mut collapsed = los_link(None, quiet_cfg(), 7);
        collapsed.set_coherence_scale(100.0);
        let h0 = nominal.response(TagMode::Absent, &layout);
        nominal.advance(Duration::millis(5));
        collapsed.advance(Duration::millis(5));
        let dist = |h: &[Complex64]| -> f64 {
            h0.iter().zip(h).map(|(a, b)| (*a - *b).abs()).sum::<f64>() / h0.len() as f64
        };
        let dn = dist(&nominal.response(TagMode::Absent, &layout));
        let dc = dist(&collapsed.response(TagMode::Absent, &layout));
        assert!(
            dc > dn * 3.0,
            "100× collapse must fade much faster: {dc} vs {dn}"
        );

        // Scale 1.0 must be bit-identical to an untouched link.
        let mut a = los_link(None, quiet_cfg(), 9);
        let mut b = los_link(None, quiet_cfg(), 9);
        b.set_coherence_scale(1.0);
        a.advance(Duration::millis(3));
        b.advance(Duration::millis(3));
        assert_eq!(
            a.response(TagMode::Absent, &layout),
            b.response(TagMode::Absent, &layout)
        );
    }

    #[test]
    fn advance_decorrelates_channel_over_coherence_time() {
        let layout = SubcarrierLayout::new(witag_phy::params::Bandwidth::Mhz20);
        let mut link = los_link(None, quiet_cfg(), 7);
        let h0 = link.response(TagMode::Absent, &layout);
        link.advance(Duration::millis(1));
        let h1 = link.response(TagMode::Absent, &layout);
        link.advance(Duration::millis(500)); // 5× coherence time
        let h2 = link.response(TagMode::Absent, &layout);
        let d01: f64 =
            h0.iter().zip(&h1).map(|(a, b)| (*a - *b).abs()).sum::<f64>() / h0.len() as f64;
        let d02: f64 =
            h0.iter().zip(&h2).map(|(a, b)| (*a - *b).abs()).sum::<f64>() / h0.len() as f64;
        assert!(
            d02 > d01 * 3.0,
            "long-horizon drift {d02} must exceed short-horizon {d01}"
        );
    }

    #[test]
    fn interference_bursts_cause_losses() {
        // Crank interference way up: decodes must fail sometimes even
        // without a tag.
        let cfg = LinkConfig {
            interference_rate_hz: 4000.0,
            interference_duration_s: 300e-6,
            interference_rel_db: 10.0,
            ..LinkConfig::default()
        };
        let mut link = los_link(None, cfg, 8);
        let config = PhyConfig::new(Mcs::ht(7));
        let psdu = vec![0x11u8; 64];
        let tx = transmit(&config, &psdu);
        let schedule = TagSchedule::constant(TagMode::Absent, tx.symbols.len());
        let mut failures = 0;
        for _ in 0..40 {
            let rx = link.apply_ppdu(&tx, &schedule);
            if receive(&rx, link.noise_var()).bytes != psdu {
                failures += 1;
            }
        }
        assert!(failures > 0, "saturating interference must cause some losses");
    }

    #[test]
    fn best_mcs_tracks_snr() {
        let fp = Floorplan::free_space();
        let cfg = quiet_cfg();
        let near = Link::new(
            &fp,
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            None,
            cfg.clone(),
            9,
        );
        let far = Link::new(
            &fp,
            Point2::new(0.0, 0.0),
            Point2::new(400.0, 0.0),
            None,
            cfg,
            9,
        );
        let near_mcs = near.best_mcs(3.0);
        let far_mcs = far.best_mcs(3.0);
        assert!(near_mcs.required_snr_db() > far_mcs.required_snr_db());
    }

    #[test]
    fn tag_incident_power_reasonable() {
        let link = los_link(Some(Point2::new(7.8, 3.5)), quiet_cfg(), 10);
        let p = link.tag_incident_dbm(1.0);
        // 1 m from a 15 dBm transmitter: ≈ 15 − 40 = −25 dBm.
        assert!((-32.0..-18.0).contains(&p), "got {p} dBm");
    }

    #[test]
    fn second_tag_absent_matches_single_tag() {
        let fp = Floorplan::paper_testbed();
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let layout = SubcarrierLayout::new(witag_phy::params::Bandwidth::Mhz20);
        let single = Link::new(&fp, client, ap, Some(Point2::new(7.8, 3.5)), quiet_cfg(), 44);
        let multi = Link::new_multi(
            &fp,
            client,
            ap,
            Some(Point2::new(7.8, 3.5)),
            &[Point2::new(3.0, 3.2)],
            quiet_cfg(),
            44,
        );
        let freqs: Vec<f64> = (0..layout.n_occupied())
            .map(|p| layout.freq_offset_hz(p))
            .collect();
        let h1 = single.response_at(TagMode::Phase0, &freqs);
        let h2 = multi.response_at_multi(TagMode::Phase0, &[TagMode::Absent], &freqs);
        for (a, b) in h1.iter().zip(h2.iter()) {
            assert!((*a - *b).abs() < 1e-15, "absent extra tag must be invisible");
        }
        // A reflecting extra tag changes the channel.
        let h3 = multi.response_at_multi(TagMode::Phase0, &[TagMode::Phase0], &freqs);
        let diff: f64 = h1.iter().zip(h3.iter()).map(|(a, b)| (*a - *b).abs()).sum();
        assert!(diff > 0.0);
    }

    #[test]
    fn colliding_tags_corrupt_each_others_ones() {
        // Two tags answering the same query: tag A flips odd data
        // subframes, tag B flips even ones — the block-ACK bitmap shows
        // the union of corruption, garbling both tags' data. This is why
        // deployments give tags distinct trigger signatures.
        use witag_mac::ampdu::aggregate;
        use witag_mac::header::{Addr, FrameKind, MacHeader};
        use witag_mac::{deaggregate, Mpdu};
        let fp = Floorplan::paper_testbed();
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let mut link = Link::new_multi(
            &fp,
            client,
            ap,
            Some(Point2::new(7.8, 3.5)),
            &[Point2::new(6.9, 3.6)],
            quiet_cfg(),
            45,
        );
        let mpdus: Vec<Mpdu> = (0..16)
            .map(|seq| {
                let mut h =
                    MacHeader::qos_null(Addr::local(2), Addr::local(1), Addr::local(2), seq);
                h.kind = FrameKind::QosData;
                Mpdu {
                    header: h,
                    payload: vec![0xA5; 70],
                }
            })
            .collect();
        let (psdu, _) = aggregate(&mpdus);
        let phy = PhyConfig::new(Mcs::ht(5));
        let ppdu = transmit(&phy, &psdu);
        let k = phy.n_symbols(psdu.len()) / 16; // symbols per subframe (approx)
        let n_sym = ppdu.symbols.len();
        let mut sched_a = TagSchedule::constant(TagMode::Phase0, n_sym);
        let mut sched_b = TagSchedule::constant(TagMode::Phase0, n_sym);
        for i in 0..16usize {
            for s in i * k + 1..((i + 1) * k - 1).min(n_sym) {
                if i % 2 == 1 {
                    sched_a.data[s] = TagMode::Phase180;
                } else {
                    sched_b.data[s] = TagMode::Phase180;
                }
            }
        }
        let rx = link.apply_ppdu_multi(&ppdu, &sched_a, &[&sched_b]);
        let decoded = witag_phy::receiver::receive(&rx, link.noise_var());
        let outcomes = deaggregate(&decoded.bytes);
        let survivors = outcomes.iter().filter(|o| o.mpdu.is_some()).count();
        // Tag A alone would leave the even subframes alive; with B also
        // flipping, nearly everything dies — the collision destroys both
        // tags' "1" bits.
        assert!(
            survivors <= 2,
            "collision must corrupt nearly all subframes, {survivors} survived"
        );
    }

    #[test]
    fn legacy_block_ack_roundtrips_through_channel() {
        use witag_phy::legacy::{legacy_receive, legacy_transmit, LegacyRate};
        let mut link = los_link(Some(Point2::new(7.8, 3.5)), quiet_cfg(), 21);
        let psdu = vec![0x5Cu8; 32];
        let tx = legacy_transmit(LegacyRate::M24, &psdu);
        let rx = link.apply_legacy(&tx, TagMode::Phase0);
        assert_eq!(legacy_receive(&rx, link.noise_var()), psdu);
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn short_schedule_rejected() {
        let mut link = los_link(None, quiet_cfg(), 11);
        let config = PhyConfig::new(Mcs::ht(0));
        let tx = transmit(&config, &[0u8; 100]);
        let schedule = TagSchedule::constant(TagMode::Absent, 1);
        let _ = link.apply_ppdu(&tx, &schedule);
    }
}
