//! # witag-channel — geometric wireless channel with a backscatter tag
//!
//! The channel substrate for the WiTAG reproduction. A [`Link`] turns the
//! floorplan geometry of `witag-sim` into per-subcarrier complex channel
//! responses that `witag-phy` PPDUs are passed through:
//!
//! * free-space + obstacle-penetration path loss ([`pathloss`]),
//! * environmental multipath (frequency selectivity + temporal drift with
//!   a ~100 ms coherence time),
//! * an optional **tag ray** whose presence/sign is switched per OFDM
//!   symbol via a [`TagSchedule`] — the backscatter modulation itself,
//! * AWGN from a physical noise floor, and Poisson ambient-interference
//!   bursts that keep the ambient error rate realistic (paper §4.1).
//!
//! The tag ray's field amplitude follows the radar-equation two-hop form
//! the paper cites in §6.2: power ∝ 1/(Ds²·Dr²), minimised when the tag
//! sits midway between transmitter and receiver — the cause of Figure 5's
//! U-shaped BER curve.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

pub mod link;
pub mod mimo;
pub mod pathloss;

pub use link::{Link, LinkConfig, TagMode, TagSchedule};
pub use mimo::{MimoLink, MimoLinkConfig};
pub use pathloss::{
    backscatter_amplitude, db_to_linear, freespace_amplitude, freespace_loss_db, linear_to_db,
    noise_floor_dbm, wavelength, SPEED_OF_LIGHT,
};
