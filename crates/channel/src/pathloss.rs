//! Path-loss laws and dB/linear conversions.
//!
//! Free-space (Friis) loss for in-room LOS links, plus the obstacle
//! penetration losses from the floorplan for NLOS links. Backscatter
//! two-hop amplitudes follow the radar-equation form the paper cites
//! (§6.2, Skolnik): received reflected power ∝ 1/(Ds²·Dr²).

/// Speed of light (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Convert a power ratio in dB to linear.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear power ratio to dB.
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Convert dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_linear(dbm)
}

/// Wavelength (m) at carrier frequency `f` (Hz).
pub fn wavelength(f_hz: f64) -> f64 {
    SPEED_OF_LIGHT / f_hz
}

/// Free-space *field amplitude* gain over a path of `d` metres at carrier
/// `f_hz`: λ/(4πd). Squared, this is the Friis power gain for unity
/// antenna gains.
///
/// Distances below 10 cm are clamped to avoid the near-field singularity.
pub fn freespace_amplitude(d_m: f64, f_hz: f64) -> f64 {
    let d = d_m.max(0.1);
    wavelength(f_hz) / (4.0 * core::f64::consts::PI * d)
}

/// Free-space power path loss in dB (positive number).
pub fn freespace_loss_db(d_m: f64, f_hz: f64) -> f64 {
    -linear_to_db(freespace_amplitude(d_m, f_hz).powi(2))
}

/// Thermal noise power (dBm) in bandwidth `bw_hz` with noise figure
/// `nf_db`: −174 dBm/Hz + 10·log₁₀(BW) + NF.
pub fn noise_floor_dbm(bw_hz: f64, nf_db: f64) -> f64 {
    -174.0 + 10.0 * bw_hz.log10() + nf_db
}

/// Two-hop backscatter *field amplitude* gain: TX→tag (`ds` m) re-radiated
/// to RX (`dr` m), with scatterer gain `g` (antenna gain² × re-radiation
/// efficiency folded into one calibration constant).
///
/// The power form of this is the paper's 1/(Ds²·Dr²) dependence.
pub fn backscatter_amplitude(ds_m: f64, dr_m: f64, f_hz: f64, g: f64) -> f64 {
    // Each hop contributes λ/(4πd); re-radiation aperture-to-gain factors
    // are absorbed into g (units: dimensionless field gain).
    g * freespace_amplitude(ds_m, f_hz) * freespace_amplitude(dr_m, f_hz) * 4.0
        * core::f64::consts::PI
        / wavelength(f_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F24: f64 = 2.437e9; // WiFi channel 6

    #[test]
    fn db_linear_roundtrip() {
        for db in [-30.0, 0.0, 3.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
        assert!((db_to_linear(3.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn freespace_loss_at_known_points() {
        // FSPL at 1 m, 2.437 GHz ≈ 40.2 dB.
        let l1 = freespace_loss_db(1.0, F24);
        assert!((l1 - 40.2).abs() < 0.3, "got {l1}");
        // +20 dB per decade of distance.
        let l10 = freespace_loss_db(10.0, F24);
        assert!((l10 - l1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_20mhz() {
        // −174 + 73 + 7 = −94 dBm.
        let nf = noise_floor_dbm(20e6, 7.0);
        assert!((nf + 94.0).abs() < 0.1, "got {nf}");
    }

    #[test]
    fn backscatter_follows_inverse_square_square() {
        let g = 1.0;
        let a1 = backscatter_amplitude(1.0, 7.0, F24, g);
        let a2 = backscatter_amplitude(2.0, 7.0, F24, g);
        // Field amplitude halves when Ds doubles => power drops 4x.
        assert!((a1 / a2 - 2.0).abs() < 1e-9);
        // Symmetric in the two hops.
        assert!((backscatter_amplitude(3.0, 5.0, F24, g)
            - backscatter_amplitude(5.0, 3.0, F24, g))
            .abs()
            < 1e-15);
    }

    #[test]
    fn backscatter_minimised_at_midpoint() {
        // Paper §6.2: with Ds + Dr fixed, reflected strength is minimised
        // at Ds = Dr.
        let total = 8.0;
        let mid = backscatter_amplitude(4.0, 4.0, F24, 1.0);
        for ds in [1.0, 2.0, 3.0, 3.9] {
            let a = backscatter_amplitude(ds, total - ds, F24, 1.0);
            assert!(a > mid, "Ds={ds}: {a} should exceed midpoint {mid}");
        }
    }

    #[test]
    fn near_field_clamped() {
        assert_eq!(
            freespace_amplitude(0.0, F24),
            freespace_amplitude(0.1, F24)
        );
        assert!(freespace_amplitude(0.05, F24).is_finite());
    }

    #[test]
    fn wavelength_at_wifi_band() {
        assert!((wavelength(F24) - 0.123).abs() < 0.001);
    }
}
