//! Property-based tests for the channel model: physical sanity for
//! arbitrary geometries and tag states.

use proptest::prelude::*;
use witag_channel::{Link, LinkConfig, TagMode};
use witag_phy::params::{Bandwidth, SubcarrierLayout};
use witag_sim::geom::{Floorplan, Point2};

fn quiet() -> LinkConfig {
    LinkConfig {
        interference_rate_hz: 0.0,
        ..LinkConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SNR decreases with distance in free space (monotone link budget).
    #[test]
    fn snr_monotone_in_distance(d1 in 1.0f64..40.0, factor in 1.2f64..4.0) {
        let fp = Floorplan::free_space();
        let snr_at = |d: f64| {
            Link::new(
                &fp,
                Point2::new(0.0, 0.0),
                Point2::new(d, 0.0),
                None,
                LinkConfig { n_env_rays: 0, ..quiet() },
                7,
            )
            .snr_db()
        };
        prop_assert!(snr_at(d1) > snr_at(d1 * factor));
    }

    /// Phase-flip displacement is exactly twice the on-off displacement
    /// for any tag placement (the §5.2 identity).
    #[test]
    fn flip_doubles_ook_everywhere(tx_frac in 0.05f64..0.95, ty in 1.0f64..6.0) {
        let fp = Floorplan::paper_testbed();
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let tag = Point2::new(
            client.x + (ap.x - client.x) * tx_frac,
            ty,
        );
        let link = Link::new(&fp, client, ap, Some(tag), quiet(), 11);
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let ook = link.tag_delta_magnitude(TagMode::OpenCircuit, TagMode::ShortCircuit, &layout);
        let flip = link.tag_delta_magnitude(TagMode::Phase0, TagMode::Phase180, &layout);
        prop_assume!(ook > 1e-12);
        prop_assert!((flip / ook - 2.0).abs() < 1e-6, "ratio {}", flip / ook);
    }

    /// Absent and open-circuit tags are indistinguishable; a reflecting
    /// tag always changes the channel.
    #[test]
    fn tag_mode_identities(frac in 0.1f64..0.9) {
        let fp = Floorplan::paper_testbed();
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let tag = client.lerp(ap, frac);
        let link = Link::new(&fp, client, ap, Some(tag), quiet(), 13);
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        prop_assert_eq!(
            link.tag_delta_magnitude(TagMode::Absent, TagMode::OpenCircuit, &layout),
            0.0
        );
        prop_assert!(
            link.tag_delta_magnitude(TagMode::Absent, TagMode::ShortCircuit, &layout) > 0.0
        );
        prop_assert_eq!(
            link.tag_delta_magnitude(TagMode::Phase0, TagMode::ShortCircuit, &layout),
            0.0
        );
    }

    /// The same seed gives the same channel; different seeds differ.
    #[test]
    fn channel_deterministic_per_seed(seed in any::<u64>()) {
        let fp = Floorplan::paper_testbed();
        let client = Floorplan::los_client_position();
        let ap = Floorplan::ap_position();
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        let mk = |s: u64| {
            Link::new(&fp, client, ap, None, quiet(), s)
                .response(TagMode::Absent, &layout)
        };
        let h1 = mk(seed);
        let h2 = mk(seed);
        for (a, b) in h1.iter().zip(h2.iter()) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// Channel responses are finite for any in-building geometry.
    #[test]
    fn responses_always_finite(
        cx in 0.5f64..17.5, cy in 0.5f64..6.5,
        tx_frac in 0.0f64..1.0,
    ) {
        let fp = Floorplan::paper_testbed();
        let ap = Floorplan::ap_position();
        let client = Point2::new(cx, cy);
        let tag = client.lerp(ap, tx_frac);
        let link = Link::new(&fp, client, ap, Some(tag), quiet(), 17);
        let layout = SubcarrierLayout::new(Bandwidth::Mhz20);
        for mode in [TagMode::Absent, TagMode::Phase0, TagMode::Phase180, TagMode::ShortCircuit] {
            for h in link.response(mode, &layout) {
                prop_assert!(h.is_finite());
            }
        }
        prop_assert!(link.snr_db().is_finite());
    }
}
