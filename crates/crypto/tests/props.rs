//! Property-based tests for the crypto substrate: roundtrips for
//! arbitrary payloads and guaranteed tamper detection.

use proptest::prelude::*;
use witag_crypto::{crc32, crc8, verify_fcs, with_fcs, Aes128, CcmpKey, Rc4, WepKey};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fcs_roundtrip_any_payload(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let framed = with_fcs(&data);
        prop_assert_eq!(verify_fcs(&framed), Some(&data[..]));
    }

    #[test]
    fn fcs_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut framed = with_fcs(&data);
        let idx = byte_sel.index(framed.len());
        framed[idx] ^= 1 << bit;
        prop_assert_eq!(verify_fcs(&framed), None);
    }

    #[test]
    fn crc32_linearity(a in proptest::collection::vec(any::<u8>(), 1..64)) {
        // CRC is deterministic and input-sensitive.
        prop_assert_eq!(crc32(&a), crc32(&a));
        let mut b = a.clone();
        b[0] = b[0].wrapping_add(1);
        prop_assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn crc8_detects_any_flip_in_delimiter_fields(field in any::<u16>(), bit in 0u8..16) {
        let bytes = field.to_le_bytes();
        let crc = crc8(&bytes);
        let corrupted = (field ^ (1 << bit)).to_le_bytes();
        prop_assert_ne!(crc8(&corrupted), crc);
    }

    #[test]
    fn aes_is_a_permutation(key in any::<[u8; 16]>(), b1 in any::<[u8; 16]>(), b2 in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        if b1 != b2 {
            prop_assert_ne!(aes.encrypt(&b1), aes.encrypt(&b2), "distinct blocks must map distinctly");
        }
        prop_assert_eq!(aes.encrypt(&b1), aes.encrypt(&b1), "deterministic");
    }

    #[test]
    fn rc4_apply_twice_is_identity(key in proptest::collection::vec(any::<u8>(), 1..64),
                                   data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = data.clone();
        Rc4::new(&key).apply(&mut buf);
        Rc4::new(&key).apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn ccmp_roundtrip_any_payload(
        key in any::<[u8; 16]>(),
        hdr in proptest::collection::vec(any::<u8>(), 10..30),
        a2 in any::<[u8; 6]>(),
        tid in 0u8..8,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut tx = CcmpKey::new(&key);
        let mut rx = CcmpKey::new(&key);
        let protected = tx.encrypt(&hdr, &a2, tid, &payload);
        prop_assert_eq!(rx.decrypt(&hdr, &a2, tid, &protected).unwrap(), payload);
    }

    #[test]
    fn ccmp_detects_any_ciphertext_flip(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        pos_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let hdr = [0x88u8; 10];
        let a2 = [2u8; 6];
        let mut tx = CcmpKey::new(&key);
        let mut rx = CcmpKey::new(&key);
        let mut protected = tx.encrypt(&hdr, &a2, 0, &payload);
        // Flip anywhere after the CCMP header's PN (flipping the PN makes
        // the frame a replay/unknown PN, also rejected but differently).
        let idx = 8 + pos_sel.index(protected.len() - 8);
        protected[idx] ^= 1 << bit;
        prop_assert!(rx.decrypt(&hdr, &a2, 0, &protected).is_err());
    }

    #[test]
    fn wep_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut tx = WepKey::new(b"0123456789abc");
        let rx = WepKey::new(b"0123456789abc");
        let frame = tx.encrypt(&payload);
        prop_assert_eq!(rx.decrypt(&frame).unwrap(), payload);
    }

    #[test]
    fn wep_detects_any_body_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        pos_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut tx = WepKey::new(b"ABCDE");
        let rx = WepKey::new(b"ABCDE");
        let mut frame = tx.encrypt(&payload);
        // Flip anywhere after the clear-text IV.
        let idx = 3 + pos_sel.index(frame.len() - 3);
        frame[idx] ^= 1 << bit;
        prop_assert!(rx.decrypt(&frame).is_err());
    }
}
