//! CRC-32 (802.11 FCS) and CRC-8 (A-MPDU delimiter signature).
//!
//! * CRC-32: the IEEE 802.3 polynomial `0x04C11DB7` (reflected form
//!   `0xEDB88320`), init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — exactly
//!   the FCS appended to every 802.11 MPDU. A corrupted subframe is
//!   detected at the AP by this check failing, which is the signal WiTAG's
//!   block-ACK channel is built on.
//! * CRC-8: polynomial `x⁸+x²+x+1` (`0x07`), init 0, no final XOR — the
//!   802.11n MPDU delimiter CRC that protects the 16-bit length/reserved
//!   fields so a receiver can walk an A-MPDU even when an MPDU body is
//!   garbage.

/// Reflected CRC-32 table for polynomial 0xEDB88320, built at first use.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// Compute the IEEE CRC-32 over `data` (as used by the 802.11 FCS).
///
/// ```
/// // Standard check value: CRC-32 of "123456789" is 0xCBF43926.
/// assert_eq!(witag_crypto::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append the 4-byte little-endian FCS to a frame body, returning the
/// on-air MPDU bytes.
pub fn with_fcs(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Check the trailing FCS of an on-air MPDU; returns the body on success.
pub fn verify_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (body, fcs) = frame.split_at(frame.len() - 4);
    let expected = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    (crc32(body) == expected).then_some(body)
}

/// Compute the 802.11n delimiter CRC-8 (poly 0x07, init 0) over `data`.
///
/// The real delimiter computes this over the 16 length/reserved bits; we
/// expose the general byte-oriented form and let the MAC crate feed it the
/// packed delimiter fields.
pub fn crc8(data: &[u8]) -> u8 {
    let mut c = 0u8;
    for &b in data {
        c ^= b;
        for _ in 0..8 {
            c = if c & 0x80 != 0 { (c << 1) ^ 0x07 } else { c << 1 };
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"The quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn fcs_roundtrip() {
        let body = b"mpdu body bytes";
        let frame = with_fcs(body);
        assert_eq!(frame.len(), body.len() + 4);
        assert_eq!(verify_fcs(&frame), Some(&body[..]));
    }

    #[test]
    fn fcs_rejects_corruption() {
        let mut frame = with_fcs(b"payload");
        frame[2] ^= 0x40;
        assert_eq!(verify_fcs(&frame), None);
    }

    #[test]
    fn fcs_rejects_short_frames() {
        assert_eq!(verify_fcs(&[1, 2, 3]), None);
    }

    #[test]
    fn crc8_known_vectors() {
        // CRC-8/SMBUS style (poly 0x07, init 0): crc8("123456789") = 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(b""), 0);
        assert_eq!(crc8(&[0x00]), 0x00);
        assert_eq!(crc8(&[0xFF]), 0xF3);
    }

    #[test]
    fn crc8_detects_delimiter_bit_flips() {
        let fields = [0x3Au8, 0x0F];
        let base = crc8(&fields);
        for byte in 0..2 {
            for bit in 0..8 {
                let mut f = fields;
                f[byte] ^= 1 << bit;
                assert_ne!(crc8(&f), base);
            }
        }
    }
}
