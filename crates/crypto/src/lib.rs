//! # witag-crypto — checksums and link-layer encryption
//!
//! Everything the MAC layer needs to frame and protect MPDUs, implemented
//! from scratch (no external crates):
//!
//! * [`crc`] — CRC-32 (IEEE 802.3, used as the 802.11 FCS) and CRC-8
//!   (polynomial 0x07, used by the A-MPDU delimiter).
//! * [`aes`] — AES-128 block cipher (FIPS-197). Used by CCMP.
//! * [`ccmp`] — CCMP (AES-CCM per IEEE 802.11i): CTR-mode encryption with a
//!   CBC-MAC integrity tag, covering the MPDU payload and an AAD derived
//!   from the MAC header. This is WPA2's data confidentiality protocol.
//! * [`rc4`] / [`wep`] — the legacy WEP path (RC4 keystream + CRC-32 ICV),
//!   implemented to demonstrate that WiTAG works over *any* of open, WEP,
//!   or WPA2 networks, while symbol-modifying backscatter designs break the
//!   ICV/MIC verification.
//!
//! The reproduction's point (paper §1, §4): WiTAG never needs to read or
//! modify frame *contents*, so ciphertext payloads are as good as plaintext
//! ones. These primitives let the end-to-end tests prove that, and prove
//! the converse for HitchHike-style designs.
//!
//! None of this code is hardened against side channels; it exists to make
//! the protocol semantics real, not to protect secrets.
//!
//! The system-wide map — crate graph, data flow, determinism/replay
//! contract, fault/observability/lint hooks — is `docs/ARCHITECTURE.md`
//! at the repository root.

#![forbid(unsafe_code)]

pub mod aes;
pub mod ccmp;
pub mod crc;
pub mod rc4;
pub mod wep;

pub use aes::Aes128;
pub use ccmp::{CcmpError, CcmpKey};
pub use crc::{crc32, crc8, verify_fcs, with_fcs};
pub use rc4::Rc4;
pub use wep::{WepError, WepKey};
