//! RC4 stream cipher — the keystream generator behind WEP.
//!
//! Included only so the WEP path is real; RC4 is broken and must never be
//! used for new systems. The WiTAG reproduction uses it to show the
//! protocol working unchanged over legacy encrypted networks (paper §1
//! requirement "Work with Encryption").

/// RC4 keystream generator.
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Key-schedule from a key of 1–256 bytes.
    ///
    /// # Panics
    /// Panics on an empty or over-long key.
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty() && key.len() <= 256, "RC4 key must be 1-256 bytes");
        let mut s: [u8; 256] = core::array::from_fn(|i| i as u8);
        let mut j: u8 = 0;
        for i in 0..256 {
            j = j
                .wrapping_add(s[i])
                .wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]); // lint:allow(panic_path) u8 index into [u8; 256]
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]); // lint:allow(panic_path) u8 index into [u8; 256]
        self.s[idx as usize] // lint:allow(panic_path) u8 index into [u8; 256]
    }

    /// XOR the keystream into `data` (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

impl core::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Rc4 {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_key_key() {
        // RFC 6229-adjacent classic vector: key "Key", pt "Plaintext"
        // -> BBF316E8D940AF0AD3.
        let mut rc4 = Rc4::new(b"Key");
        let mut data = b"Plaintext".to_vec();
        rc4.apply(&mut data);
        assert_eq!(data, [0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3]);
    }

    #[test]
    fn known_vector_wiki() {
        // key "Wiki", pt "pedia" -> 1021BF0420.
        let mut rc4 = Rc4::new(b"Wiki");
        let mut data = b"pedia".to_vec();
        rc4.apply(&mut data);
        assert_eq!(data, [0x10, 0x21, 0xBF, 0x04, 0x20]);
    }

    #[test]
    fn apply_twice_is_identity() {
        let mut a = Rc4::new(b"secret");
        let mut b = Rc4::new(b"secret");
        let original = b"some longer message body for the stream cipher".to_vec();
        let mut data = original.clone();
        a.apply(&mut data);
        assert_ne!(data, original);
        b.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "1-256 bytes")]
    fn empty_key_panics() {
        let _ = Rc4::new(b"");
    }
}
