//! CCMP — WPA2 data confidentiality (AES in CCM mode, IEEE 802.11i §8.3.3).
//!
//! CCM = CTR encryption + CBC-MAC authentication with a single AES key.
//! The 802.11 construction binds each MPDU's ciphertext to:
//!
//! * a 48-bit **packet number** (PN, replay counter, carried in the CCMP
//!   header),
//! * the transmitter address, and
//! * additional authenticated data (AAD) derived from the (masked) MAC
//!   header.
//!
//! What matters for the WiTAG reproduction: the 8-byte MIC makes *any*
//! modification of protected bits detectable — this is exactly why
//! symbol-translation backscatter (HitchHike/FreeRider) cannot work on WPA
//! networks (paper §2), while WiTAG, which only ever destroys whole
//! subframes, is unaffected (the AP simply reports the subframe missing in
//! the block ACK). The integration tests exercise both sides of that claim.
//!
//! Simplifications vs the full standard: we use the standard M=8, L=2 CCM
//! parameters and a nonce of `priority ‖ A2 ‖ PN`, but derive the AAD from
//! the caller-supplied header bytes directly instead of re-masking every
//! subtype flag (the masking rules exist for QoS/retry bits that our MAC
//! model never mutates between encrypt and decrypt).

use crate::aes::Aes128;

/// CCMP encryption/decryption failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcmpError {
    /// Frame too short to carry the CCMP header and MIC.
    Truncated,
    /// MIC verification failed — the payload or header was tampered with.
    MicMismatch,
    /// Packet number not strictly increasing (replay).
    Replay,
}

impl core::fmt::Display for CcmpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CcmpError::Truncated => write!(f, "frame too short for CCMP"),
            CcmpError::MicMismatch => write!(f, "CCMP MIC mismatch (tampered frame)"),
            CcmpError::Replay => write!(f, "CCMP replay detected (stale PN)"),
        }
    }
}

impl std::error::Error for CcmpError {}

/// Length of the CCMP header prepended to the payload.
pub const CCMP_HEADER_LEN: usize = 8;
/// Length of the MIC appended to the payload.
pub const MIC_LEN: usize = 8;

/// A CCMP session key (the pairwise temporal key in a real handshake).
#[derive(Clone)]
pub struct CcmpKey {
    cipher: Aes128,
    /// Next PN to use when encrypting.
    tx_pn: u64,
    /// Highest PN accepted so far (replay window of size 1, like the spec's
    /// per-TID replay counter).
    rx_pn: u64,
}

impl core::fmt::Debug for CcmpKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CcmpKey {{ tx_pn: {}, rx_pn: {} }}", self.tx_pn, self.rx_pn)
    }
}

impl CcmpKey {
    /// Install a 128-bit temporal key.
    pub fn new(key: &[u8; 16]) -> Self {
        CcmpKey {
            cipher: Aes128::new(key),
            tx_pn: 1,
            rx_pn: 0,
        }
    }

    /// Build the 13-byte CCM nonce: priority ‖ transmitter address ‖ PN.
    fn nonce(priority: u8, a2: &[u8; 6], pn: u64) -> [u8; 13] {
        let pn_bytes = pn.to_be_bytes();
        let mut n = [0u8; 13];
        n[0] = priority;
        n[1..7].copy_from_slice(a2);
        n[7..13].copy_from_slice(&pn_bytes[2..8]); // 48-bit PN, big-endian
        n
    }

    /// CTR-mode keystream block `i` for the given nonce.
    fn ctr_block(&self, nonce: &[u8; 13], counter: u16) -> [u8; 16] {
        // Flags byte for CTR: L' = L-1 = 1.
        let mut block = [0u8; 16];
        block[0] = 0x01;
        block[1..14].copy_from_slice(nonce);
        block[14..16].copy_from_slice(&counter.to_be_bytes());
        self.cipher.encrypt(&block)
    }

    /// CBC-MAC over B0 ‖ AAD blocks ‖ message blocks; returns the full tag.
    fn cbc_mac(&self, nonce: &[u8; 13], aad: &[u8], msg: &[u8]) -> [u8; 16] {
        // B0: flags ‖ nonce ‖ message length. Flags: Adata=1, M'=(8-2)/2=3,
        // L'=1 -> 0b0_1_011_001 = 0x59.
        let mut b0 = [0u8; 16];
        b0[0] = 0x59;
        b0[1..14].copy_from_slice(nonce);
        b0[14..16].copy_from_slice(&(msg.len() as u16).to_be_bytes());
        let mut x = self.cipher.encrypt(&b0);

        // AAD, prefixed by its 2-byte length, zero-padded to block size.
        let mut aad_stream = Vec::with_capacity(2 + aad.len() + 15);
        aad_stream.extend_from_slice(&(aad.len() as u16).to_be_bytes());
        aad_stream.extend_from_slice(aad);
        while aad_stream.len() % 16 != 0 {
            aad_stream.push(0);
        }
        for chunk in aad_stream.chunks(16) {
            for i in 0..16 {
                x[i] ^= chunk[i];
            }
            self.cipher.encrypt_block(&mut x);
        }

        // Message blocks, zero-padded.
        for chunk in msg.chunks(16) {
            for (i, &b) in chunk.iter().enumerate() {
                x[i] ^= b;
            }
            self.cipher.encrypt_block(&mut x);
        }
        x
    }

    /// Encrypt `plaintext`, producing `CCMP header ‖ ciphertext ‖ MIC`.
    ///
    /// `header` is the MAC header the AAD is derived from; `a2` the
    /// transmitter address; `priority` the QoS TID (0 for best effort).
    pub fn encrypt(
        &mut self,
        header: &[u8],
        a2: &[u8; 6],
        priority: u8,
        plaintext: &[u8],
    ) -> Vec<u8> {
        let pn = self.tx_pn;
        self.tx_pn += 1;
        let nonce = Self::nonce(priority, a2, pn);

        // MIC over AAD + plaintext, encrypted with CTR counter 0.
        let tag = self.cbc_mac(&nonce, header, plaintext);
        let s0 = self.ctr_block(&nonce, 0);
        let mut mic = [0u8; MIC_LEN];
        for i in 0..MIC_LEN {
            mic[i] = tag[i] ^ s0[i];
        }

        // CCMP header: PN0 PN1 rsvd keyid PN2..PN5 (PN little-end first).
        let pnb = pn.to_be_bytes();
        let mut out = Vec::with_capacity(CCMP_HEADER_LEN + plaintext.len() + MIC_LEN);
        out.extend_from_slice(&[pnb[7], pnb[6], 0x00, 0x20, pnb[5], pnb[4], pnb[3], pnb[2]]);

        // CTR encryption with counters 1..
        out.extend_from_slice(plaintext);
        for (i, chunk) in out[CCMP_HEADER_LEN..].chunks_mut(16).enumerate() {
            let ks = self.ctr_block(&nonce, (i + 1) as u16);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        out.extend_from_slice(&mic);
        out
    }

    /// Extract the PN from a CCMP header.
    fn parse_pn(ccmp_hdr: &[u8]) -> u64 {
        u64::from_be_bytes([
            0,
            0,
            ccmp_hdr[7],
            ccmp_hdr[6],
            ccmp_hdr[5],
            ccmp_hdr[4],
            ccmp_hdr[1],
            ccmp_hdr[0],
        ])
    }

    /// Decrypt and verify a protected payload produced by [`encrypt`].
    ///
    /// Enforces strictly-increasing PNs (replay protection).
    ///
    /// [`encrypt`]: CcmpKey::encrypt
    pub fn decrypt(
        &mut self,
        header: &[u8],
        a2: &[u8; 6],
        priority: u8,
        protected: &[u8],
    ) -> Result<Vec<u8>, CcmpError> {
        if protected.len() < CCMP_HEADER_LEN + MIC_LEN {
            return Err(CcmpError::Truncated);
        }
        let pn = Self::parse_pn(&protected[..CCMP_HEADER_LEN]);
        if pn <= self.rx_pn {
            return Err(CcmpError::Replay);
        }
        let nonce = Self::nonce(priority, a2, pn);

        let ct = &protected[CCMP_HEADER_LEN..protected.len() - MIC_LEN];
        let rx_mic = &protected[protected.len() - MIC_LEN..];

        // CTR-decrypt.
        let mut pt = ct.to_vec();
        for (i, chunk) in pt.chunks_mut(16).enumerate() {
            let ks = self.ctr_block(&nonce, (i + 1) as u16);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }

        // Verify MIC.
        let tag = self.cbc_mac(&nonce, header, &pt);
        let s0 = self.ctr_block(&nonce, 0);
        let mut expected = [0u8; MIC_LEN];
        for i in 0..MIC_LEN {
            expected[i] = tag[i] ^ s0[i];
        }
        if expected != rx_mic {
            return Err(CcmpError::MicMismatch);
        }
        self.rx_pn = pn;
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_pair() -> (CcmpKey, CcmpKey) {
        let k = [0x0F; 16];
        (CcmpKey::new(&k), CcmpKey::new(&k))
    }

    const A2: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x01];
    const HDR: &[u8] = &[0x88, 0x41, 0x2C, 0x00, 1, 2, 3, 4, 5, 6];

    #[test]
    fn roundtrip() {
        let (mut tx, mut rx) = key_pair();
        let pt = b"sensor reading: 21.5C";
        let protected = tx.encrypt(HDR, &A2, 0, pt);
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected).unwrap(), pt);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut tx, _) = key_pair();
        let pt = vec![0xAA; 64];
        let protected = tx.encrypt(HDR, &A2, 0, &pt);
        let body = &protected[CCMP_HEADER_LEN..protected.len() - MIC_LEN];
        assert_ne!(body, &pt[..]);
    }

    #[test]
    fn payload_tamper_detected() {
        let (mut tx, mut rx) = key_pair();
        let mut protected = tx.encrypt(HDR, &A2, 0, b"data");
        let idx = CCMP_HEADER_LEN; // first ciphertext byte
        protected[idx] ^= 0x01;
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected), Err(CcmpError::MicMismatch));
    }

    #[test]
    fn header_tamper_detected() {
        // This is the HitchHike failure mode: flipping protected bits
        // breaks the MIC even though the frame still "parses".
        let (mut tx, mut rx) = key_pair();
        let protected = tx.encrypt(HDR, &A2, 0, b"data");
        let mut other_hdr = HDR.to_vec();
        other_hdr[4] ^= 0xFF;
        assert_eq!(
            rx.decrypt(&other_hdr, &A2, 0, &protected),
            Err(CcmpError::MicMismatch)
        );
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = key_pair();
        let protected = tx.encrypt(HDR, &A2, 0, b"one");
        assert!(rx.decrypt(HDR, &A2, 0, &protected).is_ok());
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected), Err(CcmpError::Replay));
    }

    #[test]
    fn pn_increments_per_frame() {
        let (mut tx, mut rx) = key_pair();
        for i in 0..5 {
            let msg = format!("frame {i}");
            let protected = tx.encrypt(HDR, &A2, 0, msg.as_bytes());
            assert_eq!(rx.decrypt(HDR, &A2, 0, &protected).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn truncated_rejected() {
        let (_, mut rx) = key_pair();
        assert_eq!(rx.decrypt(HDR, &A2, 0, &[0u8; 10]), Err(CcmpError::Truncated));
    }

    #[test]
    fn wrong_key_fails_mic() {
        let mut tx = CcmpKey::new(&[0x01; 16]);
        let mut rx = CcmpKey::new(&[0x02; 16]);
        let protected = tx.encrypt(HDR, &A2, 0, b"secret");
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected), Err(CcmpError::MicMismatch));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (mut tx, mut rx) = key_pair();
        let protected = tx.encrypt(HDR, &A2, 0, b"");
        assert_eq!(protected.len(), CCMP_HEADER_LEN + MIC_LEN);
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected).unwrap(), b"");
    }

    #[test]
    fn priority_is_bound_into_nonce() {
        let (mut tx, mut rx) = key_pair();
        let protected = tx.encrypt(HDR, &A2, 3, b"qos data");
        assert_eq!(rx.decrypt(HDR, &A2, 0, &protected), Err(CcmpError::MicMismatch));
    }
}
