//! AES-128 block cipher (FIPS-197), encryption direction only.
//!
//! CCMP needs only the forward cipher (CTR mode and CBC-MAC both encrypt),
//! so no inverse cipher is implemented. The S-box is computed at first use
//! from the finite-field inverse rather than pasted as a table, which keeps
//! the implementation auditable against the specification.

use std::sync::OnceLock;

/// Multiply two elements of GF(2⁸) with the AES reduction polynomial
/// x⁸ + x⁴ + x³ + x + 1 (0x11B).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// The AES S-box: affine transform of the multiplicative inverse in GF(2⁸).
fn sbox() -> &'static [u8; 256] {
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        // Build inverses by brute force (256² is nothing, runs once).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        for (i, entry) in sbox.iter_mut().enumerate() {
            let x = inv[i];
            *entry = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
        }
        sbox
    })
}

/// AES-128: 10 rounds, 16-byte key and block.
#[derive(Clone)]
pub struct Aes128 {
    /// Expanded key schedule: 11 round keys of 16 bytes.
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let sb = sbox();
        let mut rk = [[0u8; 16]; 11];
        rk[0] = *key;
        let mut rcon = 1u8;
        for round in 1..11 {
            let prev = rk[round - 1];
            let mut word = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            word.rotate_left(1);
            for b in word.iter_mut() {
                *b = sb[*b as usize];
            }
            word[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
            for i in 0..4 {
                rk[round][i] = prev[i] ^ word[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let sb = sbox();
        let add_round_key = |state: &mut [u8; 16], rk: &[u8; 16]| {
            for i in 0..16 {
                state[i] ^= rk[i];
            }
        };
        let sub_bytes = |state: &mut [u8; 16]| {
            for b in state.iter_mut() {
                *b = sb[*b as usize];
            }
        };
        // State is column-major: byte i lives at row i%4, column i/4.
        let shift_rows = |state: &mut [u8; 16]| {
            let s = *state;
            for row in 1..4 {
                for col in 0..4 {
                    state[row + 4 * col] = s[row + 4 * ((col + row) % 4)];
                }
            }
        };
        let mix_columns = |state: &mut [u8; 16]| {
            for col in 0..4 {
                let c = &mut state[4 * col..4 * col + 4];
                let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
                c[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
                c[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
                c[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
                c[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
            }
        };

        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypt a copy of `block` and return it.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_values() {
        let sb = sbox();
        // FIPS-197 Figure 7 values.
        assert_eq!(sb[0x00], 0x63);
        assert_eq!(sb[0x01], 0x7C);
        assert_eq!(sb[0x53], 0xED);
        assert_eq!(sb[0xFF], 0x16);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // Key 2b7e1516..., plaintext 3243f6a8..., ciphertext 3925841d...
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let pt = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
            0x0B, 0x32,
        ];
        assert_eq!(Aes128::new(&key).encrypt(&pt), expected);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // Key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ];
        assert_eq!(Aes128::new(&key).encrypt(&pt), expected);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let pt = [0u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt(&pt);
        let c2 = Aes128::new(&[1u8; 16]).encrypt(&pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn gf_mul_identities() {
        for a in 0..=255u8 {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
            assert_eq!(gf_mul(a, 2) ^ gf_mul(a, 1), gf_mul(a, 3));
        }
        // x * x⁷ = x⁸ ≡ x⁴+x³+x+1 = 0x1B.
        assert_eq!(gf_mul(0x80, 0x02), 0x1B);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[0x42; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("42"));
    }
}
