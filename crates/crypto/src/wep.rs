//! WEP (Wired Equivalent Privacy) per the original 802.11-1997 design.
//!
//! `ciphertext = RC4(IV ‖ key) ⊕ (plaintext ‖ CRC32(plaintext))`, with the
//! 3-byte IV sent in clear. The CRC-32 **ICV** (integrity check value) is
//! what a HitchHike-style tag breaks when it rewrites PHY symbols: the
//! payload no longer matches the ICV after decryption and the AP discards
//! the frame. WiTAG never modifies surviving frames, so the ICV always
//! verifies.

use crate::crc::crc32;
use crate::rc4::Rc4;

/// WEP processing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WepError {
    /// Frame shorter than IV + ICV.
    Truncated,
    /// ICV check failed after decryption.
    IcvMismatch,
}

impl core::fmt::Display for WepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WepError::Truncated => write!(f, "frame too short for WEP"),
            WepError::IcvMismatch => write!(f, "WEP ICV mismatch (corrupted or tampered)"),
        }
    }
}

impl std::error::Error for WepError {}

/// IV length in bytes (sent in the clear before the ciphertext).
pub const IV_LEN: usize = 3;
/// ICV length (encrypted CRC-32 trailer).
pub const ICV_LEN: usize = 4;

/// A WEP key (40-bit "WEP-40" or 104-bit "WEP-104").
#[derive(Clone)]
pub struct WepKey {
    key: Vec<u8>,
    next_iv: u32,
}

impl core::fmt::Debug for WepKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WepKey {{ len: {}, next_iv: {} }}", self.key.len(), self.next_iv)
    }
}

impl WepKey {
    /// Install a 5-byte (WEP-40) or 13-byte (WEP-104) key.
    ///
    /// # Panics
    /// Panics on any other key length.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            key.len() == 5 || key.len() == 13,
            "WEP keys are 5 (WEP-40) or 13 (WEP-104) bytes"
        );
        WepKey {
            key: key.to_vec(),
            next_iv: 0,
        }
    }

    fn seed(&self, iv: [u8; IV_LEN]) -> Vec<u8> {
        let mut seed = Vec::with_capacity(IV_LEN + self.key.len());
        seed.extend_from_slice(&iv);
        seed.extend_from_slice(&self.key);
        seed
    }

    /// Encrypt `plaintext`, returning `IV ‖ RC4(plaintext ‖ ICV)`.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let iv_num = self.next_iv;
        self.next_iv = (self.next_iv + 1) & 0x00FF_FFFF;
        let iv = [
            (iv_num >> 16) as u8,
            (iv_num >> 8) as u8,
            iv_num as u8,
        ];
        let mut body = Vec::with_capacity(plaintext.len() + ICV_LEN);
        body.extend_from_slice(plaintext);
        body.extend_from_slice(&crc32(plaintext).to_le_bytes());
        Rc4::new(&self.seed(iv)).apply(&mut body);
        let mut out = Vec::with_capacity(IV_LEN + body.len());
        out.extend_from_slice(&iv);
        out.extend_from_slice(&body);
        out
    }

    /// Decrypt a WEP frame body and verify the ICV.
    pub fn decrypt(&self, frame: &[u8]) -> Result<Vec<u8>, WepError> {
        if frame.len() < IV_LEN + ICV_LEN {
            return Err(WepError::Truncated);
        }
        let iv = [frame[0], frame[1], frame[2]];
        let mut body = frame[IV_LEN..].to_vec();
        Rc4::new(&self.seed(iv)).apply(&mut body);
        let (pt, icv) = body.split_at(body.len() - ICV_LEN);
        let expected = u32::from_le_bytes([icv[0], icv[1], icv[2], icv[3]]);
        if crc32(pt) != expected {
            return Err(WepError::IcvMismatch);
        }
        Ok(pt.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_wep40() {
        let mut tx = WepKey::new(b"ABCDE");
        let rx = WepKey::new(b"ABCDE");
        let frame = tx.encrypt(b"hello wep");
        assert_eq!(rx.decrypt(&frame).unwrap(), b"hello wep");
    }

    #[test]
    fn roundtrip_wep104() {
        let mut tx = WepKey::new(b"0123456789abc");
        let rx = WepKey::new(b"0123456789abc");
        let frame = tx.encrypt(b"payload bytes here");
        assert_eq!(rx.decrypt(&frame).unwrap(), b"payload bytes here");
    }

    #[test]
    fn iv_rotates_per_frame() {
        let mut tx = WepKey::new(b"ABCDE");
        let f1 = tx.encrypt(b"same");
        let f2 = tx.encrypt(b"same");
        assert_ne!(f1, f2, "distinct IVs must give distinct ciphertexts");
        assert_ne!(&f1[..3], &f2[..3]);
    }

    #[test]
    fn tamper_breaks_icv() {
        // The HitchHike failure mode on a WEP network: a modified payload
        // bit decrypts to garbage that no longer matches the ICV.
        let mut tx = WepKey::new(b"ABCDE");
        let rx = WepKey::new(b"ABCDE");
        let mut frame = tx.encrypt(b"sensor data");
        frame[5] ^= 0x10;
        assert_eq!(rx.decrypt(&frame), Err(WepError::IcvMismatch));
    }

    #[test]
    fn wrong_key_fails() {
        let mut tx = WepKey::new(b"ABCDE");
        let rx = WepKey::new(b"VWXYZ");
        let frame = tx.encrypt(b"data");
        assert_eq!(rx.decrypt(&frame), Err(WepError::IcvMismatch));
    }

    #[test]
    fn truncated_rejected() {
        let rx = WepKey::new(b"ABCDE");
        assert_eq!(rx.decrypt(&[1, 2, 3]), Err(WepError::Truncated));
    }

    #[test]
    #[should_panic(expected = "WEP keys")]
    fn bad_key_length_panics() {
        let _ = WepKey::new(b"toolongforwep40!");
    }
}
