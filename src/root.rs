//! Workspace root crate: re-exports the public API of every WiTAG crate so
//! that examples and cross-crate integration tests have a single import
//! surface. Downstream users should depend on the individual crates.

#![forbid(unsafe_code)]

pub use witag;
pub use witag_baselines as baselines;
pub use witag_channel as channel;
pub use witag_crypto as crypto;
pub use witag_mac as mac;
pub use witag_obs as obs;
pub use witag_phy as phy;
pub use witag_sim as sim;
pub use witag_tag as tag;
