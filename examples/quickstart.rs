//! Quickstart: one WiTAG exchange, narrated.
//!
//! Sets up the paper's LOS scenario (AP and client 8 m apart, tag 1 m
//! from the client), sends a byte through the tag, and prints every step
//! of the pipeline. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use witag::experiment::{Experiment, ExperimentConfig};

fn main() {
    // The paper's Figure 5 operating point, tag 1 m from the client.
    let cfg = ExperimentConfig::fig5(1.0, 2024);
    let mut exp = Experiment::new(cfg).expect("LOS link admits a query design");

    println!("WiTAG quickstart");
    println!("----------------");
    println!("link SNR:        {:.1} dB", exp.snr_db());
    println!(
        "query design:    {:?} {:?}, {} B subframes x {} ({} data bits/query)",
        exp.design.phy.mcs.modulation,
        exp.design.phy.mcs.code_rate,
        exp.design.subframe_bytes,
        exp.design.n_subframes,
        exp.design.bits_per_query()
    );
    println!(
        "subframe airtime: {} ({} OFDM symbols)",
        exp.design.subframe_airtime(),
        exp.design.symbols_per_subframe
    );

    // The tag wants to send one byte: 0b1011_0010, MSB first.
    let message: u8 = 0b1011_0010;
    let mut bits: Vec<u8> = (0..8).rev().map(|i| (message >> i) & 1).collect();
    // Fill the rest of the query with idle 1s.
    bits.resize(exp.design.bits_per_query(), 1);

    let round = exp.run_round(&bits);
    println!();
    println!("tag triggered:   {}", round.triggered);
    println!("bits sent:       {:?}", &round.sent[..8]);
    println!("bits read back:  {:?}", &round.readout.bits[..8]);
    let byte_back = round.readout.bits[..8]
        .iter()
        .fold(0u8, |acc, &b| (acc << 1) | b);
    println!(
        "message:         0b{message:08b} -> 0b{byte_back:08b} ({})",
        if byte_back == message { "delivered" } else { "corrupted" }
    );
    println!(
        "round airtime:   {} ({} damaged guard subframes)",
        round.airtime, round.readout.damaged_guards
    );

    // And a short run for aggregate statistics.
    let stats = exp.run(50);
    println!();
    println!(
        "50 more rounds:  BER {:.4}, throughput {:.1} Kbps",
        stats.ber(),
        stats.throughput_kbps()
    );
}
