//! Non-line-of-sight office: the paper's Figure 6 scenario, interactive.
//!
//! The AP sits in the lab; the client and tag are in offices behind
//! wooden walls, metal cabinets and a concrete partition (locations A
//! and B of the paper's Figure 4). Shows the link budget decomposition,
//! the rate the query designer falls back to, and the resulting tag
//! performance — including what happens if you push the client even
//! further away.
//!
//! ```text
//! cargo run --release --example nlos_office
//! ```

use witag::experiment::{Experiment, ExperimentConfig, ExperimentError};
use witag_sim::geom::{Floorplan, Point2};

fn describe(name: &str, cfg: ExperimentConfig) {
    let fp = Floorplan::paper_testbed();
    let d = cfg.ap.distance(cfg.client);
    let pen = fp.penetration_loss_db(cfg.ap, cfg.client);
    let crossings = fp.crossings(cfg.ap, cfg.client);
    println!("location {name}:");
    println!("  client at ({:.1}, {:.1}), {d:.1} m from the AP", cfg.client.x, cfg.client.y);
    println!("  {crossings} obstacles on the direct path, {pen:.0} dB penetration loss");
    match Experiment::new(cfg) {
        Ok(mut exp) => {
            println!(
                "  link SNR {:.1} dB -> query MCS {:?} {:?} ({} B subframes)",
                exp.snr_db(),
                exp.design.phy.mcs.modulation,
                exp.design.phy.mcs.code_rate,
                exp.design.subframe_bytes
            );
            let stats = exp.run(120);
            println!(
                "  120 queries: BER {:.4}, throughput {:.1} Kbps, {} missed triggers",
                stats.ber(),
                stats.throughput_kbps(),
                stats.missed_triggers
            );
        }
        Err(ExperimentError::LinkTooPoor) => {
            println!("  link too poor for any corruptible query design — out of range");
        }
        Err(other) => {
            println!("  invalid configuration: {other}");
        }
    }
    println!();
}

fn main() {
    println!("NLOS office scenarios (paper Figure 4 floorplan)\n");
    describe("A (paper: ~7 m, BER p90 = 0.007)", ExperimentConfig::nlos_a(606));
    describe("B (paper: ~17 m, BER p90 = 0.018)", ExperimentConfig::nlos_b(607));

    // Beyond the paper: keep walking away until the design space closes.
    println!("pushing further (not in the paper):\n");
    let mut cfg = ExperimentConfig::nlos_b(608);
    cfg.client = Point2::new(17.9, 6.5); // far corner, worse angle
    cfg.tag = Point2::new(17.2, 6.1);
    describe("B' (far corner)", cfg);

    println!("The query designer degrades gracefully: as SNR drops it abandons");
    println!("64-QAM for 16-QAM, and when even that is unreliable it reports the");
    println!("link unusable rather than producing queries whose losses would be");
    println!("indistinguishable from tag data.");
}
