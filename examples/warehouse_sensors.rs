//! Warehouse sensors: many battery-free tags, one querier.
//!
//! The deployment the paper's introduction motivates: battery-free
//! sensors (temperature, door state, shelf weight) scattered through a
//! space with an already-deployed WiFi network. Each tag is provisioned
//! with its own trigger signature, so the client addresses one tag at a
//! time by choosing which marker pattern to send — time-division access
//! with zero tag-side coordination.
//!
//! ```text
//! cargo run --release --example warehouse_sensors
//! ```

use witag::experiment::{Experiment, ExperimentConfig};
use witag_sim::geom::Point2;
use witag_sim::time::Duration;
use witag_tag::trigger::TriggerSignature;

/// A provisioned sensor: where it sits and which signature wakes it.
struct Sensor {
    name: &'static str,
    position: Point2,
    /// Distinct middle-marker length — the tag's address.
    middle_marker: Duration,
    /// The 16-bit reading it wants to report.
    reading: u16,
}

fn main() {
    println!("Warehouse deployment: 3 tags, 1 querying client, 1 stock AP\n");
    let sensors = [
        Sensor {
            name: "dock-door",
            position: Point2::new(7.8, 3.5),
            middle_marker: Duration::micros(40),
            reading: 0x0001, // door open
        },
        Sensor {
            name: "cold-shelf",
            position: Point2::new(6.0, 3.4),
            middle_marker: Duration::micros(56),
            reading: 0x00F3, // -13.0 C in the sensor's encoding
        },
        Sensor {
            name: "scale-12",
            position: Point2::new(3.1, 3.6),
            middle_marker: Duration::micros(72),
            reading: 0x2F40, // 12.1 kg
        },
    ];

    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10}",
        "sensor", "marker (us)", "reading", "read-back", "BER(40q)"
    );

    for s in &sensors {
        // Same floorplan and radios; tag at the sensor's position,
        // addressed by its personal marker signature.
        let mut cfg = ExperimentConfig::fig5(1.0, 77);
        cfg.tag = s.position;
        cfg.signature_override = Some(TriggerSignature {
            bursts: vec![Duration::micros(80), s.middle_marker, Duration::micros(80)],
            tolerance_ticks: 1,
        });
        let mut exp = Experiment::new(cfg).expect("LOS link admits a design");

        // Send the 16-bit reading twice per query for agreement checking,
        // padded with idle 1s.
        let mut bits: Vec<u8> = Vec::new();
        for _ in 0..2 {
            bits.extend((0..16).rev().map(|i| ((s.reading >> i) & 1) as u8));
        }
        bits.resize(exp.design.bits_per_query(), 1);

        let round = exp.run_round(&bits);
        assert!(round.triggered, "tag must answer its own signature");
        let word = |slice: &[u8]| slice.iter().fold(0u16, |acc, &b| (acc << 1) | b as u16);
        let first = word(&round.readout.bits[..16]);
        let second = word(&round.readout.bits[16..32]);
        // A real reader would retry on disagreement; the example flags it.
        let read_back = if first == second { first } else { u16::MAX };

        let stats = exp.run(40);
        println!(
            "{:<12} {:>12} {:>#10x} {:>#10x} {:>10.4}",
            s.name,
            s.middle_marker.as_micros(),
            s.reading,
            read_back,
            stats.ber(),
        );
    }

    println!("\nEach tag answers only queries carrying its marker signature, so the");
    println!("client polls sensors round-robin without any tag-to-tag coordination.");
    println!("The AP is stock hardware and sees only ordinary A-MPDU traffic.");
}
