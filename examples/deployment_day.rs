//! A day in the deployment: everything composed.
//!
//! Three battery-free sensors (distinct trigger signatures, tiny harvest
//! capacitors) in a busy office WiFi network (foreign traffic, WPA2),
//! polled by one client through one stock AP. Readings travel over the
//! reliable `tagnet` transport. This is the system the paper's
//! introduction promises, end to end, with every imperfection the
//! reproduction models turned on.
//!
//! ```text
//! cargo run --release --example deployment_day
//! ```

use witag::experiment::{CrossTraffic, Experiment, ExperimentConfig, SecurityMode};
use witag::tagnet::deliver;
use witag_sim::geom::Point2;
use witag_sim::time::Duration;
use witag_tag::trigger::TriggerSignature;

struct Sensor {
    name: &'static str,
    position: Point2,
    marker_us: u64,
    report: &'static str,
}

fn main() {
    println!("deployment day: 3 battery-free sensors, WPA2 network, busy office\n");

    let sensors = [
        Sensor {
            name: "hvac-duct",
            position: Point2::new(7.5, 3.2),
            marker_us: 40,
            report: "t=19.5C f=ok",
        },
        Sensor {
            name: "window-3",
            position: Point2::new(5.2, 3.9),
            marker_us: 56,
            report: "closed",
        },
        Sensor {
            name: "soil-planter",
            position: Point2::new(2.8, 3.1),
            marker_us: 72,
            report: "moist=41%",
        },
    ];

    let mut total_queries = 0usize;
    let mut total_time = 0.0f64;

    for s in &sensors {
        // A realistic, hostile-ish environment: WPA2 network, ambient
        // interference on, a moderately busy office around it, and a
        // battery-free tag with a small storage capacitor.
        let mut cfg = ExperimentConfig::fig5(1.0, 0xDA7);
        cfg.tag = s.position;
        cfg.security = SecurityMode::Wpa2;
        cfg.cross_traffic = Some(CrossTraffic {
            frames_per_s: 200.0,
            mean_airtime: Duration::micros(800),
        });
        cfg.energy_capacity_uj = Some(5.0);
        cfg.signature_override = Some(TriggerSignature {
            bursts: vec![
                Duration::micros(80),
                Duration::micros(s.marker_us),
                Duration::micros(80),
            ],
            tolerance_ticks: 1,
        });
        let mut exp = Experiment::new(cfg).expect("office link viable");
        let n_bits = exp.design.bits_per_query();

        let mut elapsed = 0.0f64;
        let outcome = deliver(s.report.as_bytes(), n_bits, 400, |tx| {
            let r = exp.run_round(tx);
            elapsed += r.airtime.as_secs_f64();
            r.readout.bits
        });
        match outcome {
            Some((got, queries)) => {
                println!(
                    "{:<14} -> {:<14} ({} queries, {:.0} ms on air, {} energy skips, 0 decrypt fails: {})",
                    s.name,
                    format!("{:?}", String::from_utf8_lossy(&got)),
                    queries,
                    elapsed * 1e3,
                    exp.energy_skips,
                    exp.decrypt_failures == 0,
                );
                assert_eq!(got, s.report.as_bytes(), "transport integrity");
                total_queries += queries;
                total_time += elapsed;
            }
            None => println!("{:<14} -> FAILED to deliver within budget", s.name),
        }
    }

    println!(
        "\nfleet summary: {} queries, {:.0} ms of airtime, all reports intact.",
        total_queries,
        total_time * 1e3
    );
    println!("The AP never knew. The network never changed. No batteries involved.");
}
