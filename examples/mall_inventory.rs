//! Closing time at the mall: three handheld readers inventory fifty
//! backscatter price tags through the store's WiFi, all on one channel.
//!
//! The fleet is deliberately mixed — a third of the tags sit on clean
//! links, a third are behind racks on hostile links (fault intensity
//! 0.6: bursts, drift, brownouts), and a third are battery-free
//! harvesters awake only 15% of every 3 s. The three readers contend
//! CSMA/CA-style, so concurrent queries can collide and must survive
//! the ordinary chunk FEC+CRC path like any other corruption.
//!
//! The question the example answers: with the *same* fleet, the same
//! seed and the same medium, what does the scheduling policy change?
//!
//! ```text
//! cargo run --release --example mall_inventory
//! ```

use witag_faults::FaultPlan;
use witag_net::{run_fleet, DutyCycle, FleetConfig, SchedulerKind, Transport};
use witag_obs::NullRecorder;
use witag_sim::time::Duration;

const CLIENTS: usize = 3;
const TAGS: usize = 50;
const SEED: u64 = 0xA11;

/// The shared fleet: only the scheduler and transport vary between runs.
fn fleet(kind: SchedulerKind, transport: Transport) -> FleetConfig {
    let mut cfg = FleetConfig::inventory(CLIENTS, TAGS, kind, Duration::secs(30), SEED)
        .with_transport(transport);
    for (i, p) in cfg.profiles.iter_mut().enumerate() {
        match i % 3 {
            // Clean aisle: nothing between tag and reader.
            0 => {}
            // Behind the racks: a genuinely hostile link.
            1 => p.faults = Some(FaultPlan::hostile_scaled(SEED ^ i as u64, 0.6)),
            // Battery-free harvester: awake 15% of every 3 s, phases
            // spread so the fleet never sleeps in unison.
            _ => {
                let period = Duration::secs(3);
                p.duty = Some(DutyCycle {
                    period,
                    on_fraction: 0.15,
                    phase: Duration::nanos(
                        (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % period.as_nanos(),
                    ),
                });
            }
        }
    }
    cfg
}

fn main() {
    println!("mall inventory: {CLIENTS} readers x {TAGS} tags on one channel");
    println!("tag mix: 1/3 clean, 1/3 hostile (intensity 0.6), 1/3 duty-cycled (15% of 3 s)\n");

    println!(
        "{:>9} {:>9} {:>11} {:>14} {:>12} {:>13} {:>11} {:>11}",
        "scheduler", "transport", "delivered", "goodput bps", "p50 ms", "p99 ms", "coll rate", "deadlines"
    );
    for (kind, transport) in [
        (SchedulerKind::Serial, Transport::Arq),
        (SchedulerKind::Rr, Transport::Arq),
        (SchedulerKind::Fair, Transport::Arq),
        (SchedulerKind::Edf, Transport::Arq),
        (SchedulerKind::Pred, Transport::Arq),
        (SchedulerKind::Fair, Transport::Fountain),
        (SchedulerKind::Pred, Transport::Fountain),
    ] {
        let rep = run_fleet(&fleet(kind, transport), &mut NullRecorder).expect("viable fleet");
        let ms = |p: f64| {
            rep.latency_percentile(p)
                .map_or_else(|| "-".to_string(), |us| format!("{:.0}", us / 1000.0))
        };
        println!(
            "{:>9} {:>9} {:>8}/{TAGS} {:>14.1} {:>12} {:>13} {:>11.3} {:>8}/{}",
            kind.name(),
            transport.name(),
            rep.delivered(),
            rep.goodput_bps(),
            ms(50.0),
            ms(99.0),
            rep.collision_rate(),
            rep.deadline_hits(),
            rep.delivered(),
        );
    }

    println!("\nhow to read it: `serial` polls tag 0 to completion and keeps");
    println!("probing sleeping harvesters, so the duty-cycled third throttles");
    println!("the whole inventory. `rr` spreads grants but still pays for");
    println!("sleepers until cooldown kicks in. `fair` (deficit round robin on");
    println!("consumed airtime) both skips cooling tags and stops hostile links'");
    println!("retries from hogging the medium — highest goodput. `edf` chases");
    println!("the per-tag deadlines instead, trading a little goodput for");
    println!("deadline hits. `pred` adds the FlexScatter move: a traffic");
    println!("predictor watches the medium and defers contending readers while");
    println!("collisions are forecast — fewer collisions, calmer tails. The");
    println!("`fountain` rows swap the per-chunk ARQ session for the rateless");
    println!("LT transport: the hostile third stops paying per-loss retransmit");
    println!("round-trips, because any fresh symbol advances the decode. Same");
    println!("seed, same medium, byte-identical reruns: the only variables on");
    println!("that table are the scheduling policy and the transport.");
}
