//! Encrypted network: the claim that sets WiTAG apart.
//!
//! Runs the same tag traffic over an open network, WEP, and WPA2-CCMP,
//! then demonstrates *why* symbol-modifying backscatter cannot do this:
//! a HitchHike-style tag's bit flips break the WEP ICV / CCMP MIC, so
//! protected networks reject its frames no matter how the AP is patched.
//!
//! ```text
//! cargo run --release --example encrypted_network
//! ```

use witag::experiment::{Experiment, ExperimentConfig, SecurityMode};
use witag_baselines::dsss::{deliver_modified_frame, HitchhikeDelivery};

fn main() {
    println!("WiTAG over protected networks");
    println!("-----------------------------\n");

    let secret = *b"\x42meter=7731kWh\x00\x00"; // a 16-byte sensor payload
    let bits: Vec<u8> = secret
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1))
        .collect();

    for (name, mode) in [
        ("open", SecurityMode::Open),
        ("WEP-104", SecurityMode::Wep),
        ("WPA2-CCMP", SecurityMode::Wpa2),
    ] {
        let mut cfg = ExperimentConfig::fig5(1.0, 4242);
        cfg.security = mode;
        let mut exp = Experiment::new(cfg).expect("design");

        // Stream the 128-bit payload across three queries (62 bits each).
        let mut received: Vec<u8> = Vec::new();
        for chunk in bits.chunks(exp.design.bits_per_query()) {
            let mut q = chunk.to_vec();
            q.resize(exp.design.bits_per_query(), 1);
            let round = exp.run_round(&q);
            received.extend_from_slice(&round.readout.bits[..chunk.len()]);
        }
        let errors = received.iter().zip(bits.iter()).filter(|(a, b)| a != b).count();
        let bytes_back: Vec<u8> = received
            .chunks(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b))
            .collect();
        println!(
            "{name:<10} {} bit errors / {}, AP decrypt failures: {}, payload: {:?}",
            errors,
            bits.len(),
            exp.decrypt_failures,
            String::from_utf8_lossy(&bytes_back[1..14])
        );
    }

    println!("\nWhy the prior art cannot do this (HitchHike-style symbol tag):\n");
    for (desc, key, ap_modified) in [
        ("open + stock AP", None, false),
        ("open + patched AP", None, true),
        ("WEP + patched AP", Some(&b"ABCDE"[..]), true),
    ] {
        let outcome = deliver_modified_frame(b"meter=7731kWh", true, key, ap_modified);
        let verdict = match outcome {
            HitchhikeDelivery::RecoveredWithModifiedAp => "works (needs patched AP)",
            HitchhikeDelivery::DroppedByFcs => "frame dropped at FCS check",
            HitchhikeDelivery::RejectedByCrypto => "ICV fails: undecryptable",
        };
        println!("  {desc:<20} -> {verdict}");
    }
    println!("\nWiTAG's tag only ever *destroys* subframes; the ones that survive are");
    println!("bit-exact, so every integrity check passes and the block ACK still");
    println!("carries the tag's data.");
}
