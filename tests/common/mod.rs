//! Shared synthetic fault channel for the transport integration tests.
//!
//! Drives the real chunk framing and the real [`FaultInjector`] round
//! model, but replaces the PHY/geometry stack with direct bit
//! manipulation so kilobyte-scale transfers stay fast enough for the
//! default test tier. The mapping mirrors what the full stack does:
//!
//! * lost query → tag never triggers, client reads nothing,
//! * brownout → tag silent, subframes sail through clean (all-ones),
//! * drift episode → tag triggers but its corruption schedule smears
//!   across subframe boundaries (heavy bit flipping),
//! * burst interference → Gilbert–Elliott bit flips on the readout,
//! * lost block ACK → tag responded but the client learned nothing.

// Shared across several test binaries; not every binary uses every
// helper.
#![allow(dead_code)]

use witag::tagnet::RoundOutcome;
use witag_faults::{FaultInjector, FaultPlan};
use witag_sim::Rng;

/// Flip probability applied while an oscillator-drift episode is live:
/// the corruption lands on the wrong subframes, so roughly a third of
/// the readout is garbage.
const DRIFT_SMEAR_FLIP: f64 = 0.3;
/// Quiescent bit-error floor of the synthetic channel.
const AMBIENT_FLIP: f64 = 0.002;

/// A bit channel whose impairments come entirely from a [`FaultPlan`].
pub struct SyntheticChannel {
    inj: FaultInjector,
    noise: Rng,
    channel_bits: usize,
}

impl SyntheticChannel {
    pub fn new(plan: FaultPlan, channel_bits: usize) -> Self {
        let noise = Rng::seed_from_u64(plan.seed ^ 0x5eed);
        SyntheticChannel {
            inj: FaultInjector::new(plan),
            noise,
            channel_bits,
        }
    }

    /// One physical round: the tag wants to modulate `tx`; returns
    /// whether it heard the trigger and what the client read back.
    pub fn round(&mut self, tx: &[u8]) -> RoundOutcome {
        let rf = self.inj.begin_round();
        if rf.query_lost {
            return RoundOutcome {
                tag_heard: false,
                readout: None,
            };
        }
        if rf.brownout {
            return RoundOutcome {
                tag_heard: false,
                readout: Some(vec![1u8; self.channel_bits]),
            };
        }
        let mut bits = tx.to_vec();
        if let Some(p) = rf.readout_flip {
            self.inj.corrupt_readout(&mut bits, p);
        }
        if rf.clock_error != 0.0 {
            self.inj.corrupt_readout(&mut bits, DRIFT_SMEAR_FLIP);
        }
        for b in bits.iter_mut() {
            if self.noise.chance(AMBIENT_FLIP) {
                *b ^= 1;
            }
        }
        if rf.ba_lost {
            return RoundOutcome {
                tag_heard: true,
                readout: None,
            };
        }
        RoundOutcome {
            tag_heard: true,
            readout: Some(bits),
        }
    }

    /// Rounds consumed so far (from the injector's own counters).
    pub fn rounds(&self) -> u64 {
        self.inj.counters().rounds
    }

    /// The fault trace accumulated so far.
    pub fn trace(&self) -> Vec<u8> {
        self.inj.trace().to_vec()
    }
}

/// A deterministic pseudo-random message of `len` bytes.
pub fn test_message(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}
