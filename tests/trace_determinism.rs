//! Determinism contract of the observability layer: for a fixed seed and
//! fault plan, a JSONL trace from the parallel runner must be
//! **byte-identical** at every thread count (shard buffers are replayed
//! in shard order), and attaching a recorder must not perturb the
//! simulation results at all. Together with the perf-gate overhead
//! budget this is what makes `--trace` safe to leave on in CI.

use witag::experiment::{Experiment, ExperimentConfig, ExperimentStats, PARALLEL_SHARD_ROUNDS};
use witag::tagnet::{
    fountain_session_over_experiment_obs, session_over_experiment_obs, FountainConfig,
    SessionConfig, SessionOutcome,
};
use witag_faults::FaultPlan;
use witag_net::{run_replicas, FleetConfig, SchedulerKind, Transport};
use witag_obs::{jsonl, BufferRecorder, JsonlRecorder, Recorder, TraceSummary, SCHEMA};
use witag_sim::time::Duration;

fn quiet_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig5(1.0, seed);
    cfg.link.interference_rate_hz = 0.0;
    cfg
}

/// Run the parallel runner with an in-memory JSONL sink and return the
/// trace bytes plus the stats.
fn traced_parallel(
    cfg: &ExperimentConfig,
    plan: Option<&FaultPlan>,
    rounds: usize,
    threads: usize,
) -> (Vec<u8>, ExperimentStats) {
    let mut rec = JsonlRecorder::in_memory();
    let stats = Experiment::run_parallel_traced(cfg, plan, rounds, threads, &mut rec).unwrap();
    (rec.finish().unwrap(), stats)
}

#[test]
fn parallel_trace_is_byte_identical_at_1_and_4_threads() {
    let cfg = quiet_cfg(41);
    let rounds = 3 * PARALLEL_SHARD_ROUNDS + 7; // ragged last shard
    let (bytes_1t, stats_1t) = traced_parallel(&cfg, None, rounds, 1);
    for threads in [2, 4] {
        let (bytes, stats) = traced_parallel(&cfg, None, rounds, threads);
        assert_eq!(stats.rounds, stats_1t.rounds);
        assert_eq!(
            bytes, bytes_1t,
            "trace bytes at threads={threads} must match threads=1"
        );
    }
    // The trace is non-trivial: a header plus shard markers plus three
    // events per executed round.
    let text = String::from_utf8(bytes_1t).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next().unwrap(), format!("{{\"schema\":\"{SCHEMA}\"}}"));
    let shard_lines = text
        .lines()
        .filter(|l| jsonl::field_str(l, "kind") == Some("shard"))
        .count();
    assert_eq!(shard_lines, 4, "3 full shards + 1 ragged shard");
    let round_lines = text
        .lines()
        .filter(|l| jsonl::field_str(l, "kind") == Some("round"))
        .count();
    assert_eq!(round_lines, rounds);
}

#[test]
fn faulted_parallel_trace_is_byte_identical_at_1_and_4_threads() {
    let cfg = quiet_cfg(43);
    let plan = FaultPlan::hostile(17);
    let rounds = 2 * PARALLEL_SHARD_ROUNDS;
    let (bytes_1t, _) = traced_parallel(&cfg, Some(&plan), rounds, 1);
    let (bytes_4t, _) = traced_parallel(&cfg, Some(&plan), rounds, 4);
    assert_eq!(bytes_4t, bytes_1t, "faulted trace must be thread-count-invariant");
    // The injected-fault events must actually appear, and their rounds
    // must be globally numbered (shard-rebased), not per-shard.
    let text = String::from_utf8(bytes_1t).unwrap();
    let fault_rounds: Vec<u64> = text
        .lines()
        .filter(|l| jsonl::field_str(l, "kind") == Some("fault"))
        .map(|l| jsonl::field_u64(l, "round").unwrap())
        .collect();
    assert!(!fault_rounds.is_empty(), "hostile plan must inject");
    assert!(
        fault_rounds.iter().any(|&r| r >= PARALLEL_SHARD_ROUNDS as u64),
        "second shard's faults must carry rebased round stamps"
    );
}

#[test]
fn attaching_a_recorder_does_not_perturb_stats() {
    let cfg = quiet_cfg(47);
    let rounds = 2 * PARALLEL_SHARD_ROUNDS;
    let plain = Experiment::run_parallel(&cfg, None, rounds, 2).unwrap();
    let (_, traced) = traced_parallel(&cfg, None, rounds, 2);
    assert_eq!(traced.rounds, plain.rounds);
    assert_eq!(traced.errors.total, plain.errors.total);
    assert_eq!(traced.errors.errors(), plain.errors.errors());
    assert_eq!(traced.elapsed, plain.elapsed);

    // Serial path too: run() is run_obs() with a NullRecorder, so a
    // BufferRecorder run must reproduce it exactly.
    let serial = {
        let mut exp = Experiment::new(cfg.clone()).unwrap();
        exp.run(rounds)
    };
    let buffered = {
        let mut exp = Experiment::new(cfg.clone()).unwrap();
        let mut buf = BufferRecorder::new();
        let stats = exp.run_obs(rounds, &mut buf);
        assert!(!buf.events().is_empty());
        stats
    };
    assert_eq!(buffered.errors.total, serial.errors.total);
    assert_eq!(buffered.errors.errors(), serial.errors.errors());
    assert_eq!(buffered.elapsed, serial.elapsed);
}

#[test]
fn session_trace_is_reproducible_and_complete() {
    let run_once = || {
        let mut exp = Experiment::new(quiet_cfg(42)).unwrap();
        exp.attach_faults(FaultPlan::hostile_scaled(7, 0.6));
        let cfg = SessionConfig {
            max_rounds: 1500,
            ..SessionConfig::default()
        };
        let mut rec = JsonlRecorder::in_memory();
        let report = session_over_experiment_obs(&mut exp, b"obs trace", &cfg, &mut rec).unwrap();
        (rec.finish().unwrap(), report)
    };
    let (bytes_a, report_a) = run_once();
    let (bytes_b, _) = run_once();
    assert_eq!(bytes_a, bytes_b, "same seed => same session trace bytes");
    assert!(matches!(report_a.outcome, SessionOutcome::Delivered(_)));

    let text = String::from_utf8(bytes_a).unwrap();
    let mut summary = TraceSummary::default();
    for line in text.lines() {
        summary.ingest_line(line);
    }
    assert_eq!(summary.schema(), Some(SCHEMA));
    assert_eq!(summary.unknown(), 0);
    assert_eq!(summary.count("session_done"), 1, "exactly one terminal event");
    assert_eq!(
        summary.count("session_query") as usize,
        report_a.stats.rounds,
        "one query event per session round (idle rounds included)"
    );
    assert!(summary.count("session_chunk") > 0, "chunks must be recorded");
    // The driver's and the experiment's event streams interleave on one
    // shared recorder; both must be present.
    assert!(summary.count("phy_rx") > 0);
    assert!(summary.count("ba") > 0);
    assert!(summary.count("fault") > 0);
    let rendered = summary.render();
    assert!(rendered.contains("session_done"));
}

#[test]
fn fountain_session_trace_is_reproducible_and_counts_add_up() {
    let run_once = || {
        let mut exp = Experiment::new(quiet_cfg(42)).unwrap();
        exp.attach_faults(FaultPlan::hostile_scaled(7, 0.6));
        let cfg = FountainConfig::default();
        let mut rec = JsonlRecorder::in_memory();
        let report =
            fountain_session_over_experiment_obs(&mut exp, b"obs trace", &cfg, &mut rec).unwrap();
        (rec.finish().unwrap(), report)
    };
    let (bytes_a, report_a) = run_once();
    let (bytes_b, _) = run_once();
    assert_eq!(bytes_a, bytes_b, "same seed => same fountain trace bytes");
    assert!(matches!(report_a.outcome, SessionOutcome::Delivered(_)));

    let text = String::from_utf8(bytes_a).unwrap();
    let mut summary = TraceSummary::default();
    for line in text.lines() {
        summary.ingest_line(line);
    }
    assert_eq!(summary.schema(), Some(SCHEMA));
    assert_eq!(summary.unknown(), 0, "every fountain kind must be known to the schema");
    assert_eq!(summary.count("session_done"), 1);
    assert_eq!(
        summary.count("session_query") as usize,
        report_a.stats.rounds,
        "one query event per fountain round (idle rounds included)"
    );
    assert_eq!(
        summary.count("tagnet.symbol") as usize,
        report_a.stats.symbols,
        "one tagnet.symbol event per SYMBOL round"
    );
    let progress = summary.count("tagnet.decode_progress") as usize;
    assert!(progress > 0, "solves must be recorded");
    assert!(
        progress <= report_a.stats.accepted,
        "decode progress only on accepted rounds"
    );
}

#[test]
fn fountain_fleet_jsonl_is_byte_identical_at_1_and_4_threads() {
    // The full JSONL path (writer included) for a faulted fountain
    // fleet: replica shards must replay in shard order regardless of
    // worker count. The fleet layer speaks the net.* vocabulary (the
    // per-round tagnet.* kinds are session-driver events, pinned by
    // `fountain_session_trace_is_reproducible_and_counts_add_up`).
    let mut cfg = FleetConfig::inventory(2, 8, SchedulerKind::Fair, Duration::millis(1500), 23)
        .with_transport(Transport::Fountain);
    for (i, p) in cfg.profiles.iter_mut().enumerate() {
        if i % 2 == 0 {
            p.faults = Some(FaultPlan::hostile_scaled(23 ^ i as u64, 0.5));
        }
    }
    let run = |threads: usize| {
        let mut rec = JsonlRecorder::in_memory();
        let reports = run_replicas(&cfg, 3, threads, &mut rec).expect("valid fleet");
        (rec.finish().unwrap(), reports)
    };
    let (bytes_1t, reports_1t) = run(1);
    let (bytes_4t, reports_4t) = run(4);
    assert_eq!(reports_1t, reports_4t);
    assert_eq!(bytes_1t, bytes_4t, "fountain fleet JSONL must be thread-count-invariant");
    let text = String::from_utf8(bytes_1t).unwrap();
    for kind in ["net.enqueue", "net.grant", "net.session_done"] {
        assert!(
            text.lines().any(|l| jsonl::field_str(l, "kind") == Some(kind)),
            "fleet trace must carry {kind} events"
        );
    }
}

#[test]
fn null_recorder_reports_detached() {
    let mut rec = witag_obs::NullRecorder;
    assert!(!rec.enabled());
    // Recording into it is a no-op by contract; this is the zero-cost
    // default every un-instrumented caller gets.
    rec.record(&witag_obs::Event::SessionChunk { round: 0, chunk: 0 });
}
