//! Integration tests pinning the paper's headline claims, end-to-end
//! across every crate. These are the "does the reproduction actually
//! reproduce" tests; the per-figure numbers live in the bench binaries.

use witag::experiment::{Experiment, ExperimentConfig, SecurityMode};
use witag_tag::device::BitEncoding;
use witag_tag::oscillator::Oscillator;

fn quiet(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.link.interference_rate_hz = 0.0;
    cfg
}

/// §6.2 / Figure 5: the tag communicates at every position between the
/// client and the AP, and the midpoint is the worst position.
#[test]
fn figure5_u_shape() {
    let ber_at = |dist: f64| {
        let mut exp = Experiment::new(quiet(ExperimentConfig::fig5(dist, 51))).unwrap();
        exp.run(60).ber()
    };
    let near = ber_at(1.0);
    let mid = ber_at(4.0);
    let far = ber_at(7.0);
    assert!(near < 0.05, "near-client BER {near}");
    assert!(far < 0.05, "near-AP BER {far}");
    assert!(
        mid >= near.max(far),
        "midpoint ({mid}) must be the worst position ({near}/{far})"
    );
}

/// §6.2 / Figure 5: throughput stays in the tens of Kbps at every
/// position (paper: 39–40 Kbps).
#[test]
fn figure5_throughput_stability() {
    for dist in [1.0, 4.0, 7.0] {
        let mut exp = Experiment::new(quiet(ExperimentConfig::fig5(dist, 52))).unwrap();
        let kbps = exp.run(40).throughput_kbps();
        assert!(
            (30.0..60.0).contains(&kbps),
            "throughput {kbps} Kbps at {dist} m out of band"
        );
    }
}

/// §6.2 / Figure 6: both NLOS locations work; B (further, more walls) is
/// no better than A.
#[test]
fn figure6_nlos_ordering() {
    let mut a = Experiment::new(ExperimentConfig::nlos_a(53)).unwrap();
    let mut b = Experiment::new(ExperimentConfig::nlos_b(53)).unwrap();
    let sa = a.run_windows(8, 25);
    let sb = b.run_windows(8, 25);
    assert!(sa.ber() < 0.05, "location A BER {}", sa.ber());
    assert!(sb.ber() < 0.05, "location B BER {}", sb.ber());
    // B's link budget is worse, so B must not be *clearly better* than A.
    // (The strict ordering holds in expectation — the fig6 binary shows it
    // over 60 windows — but 8 windows of 1,550 bits carry sampling noise,
    // so the unit test only rejects a reversed gap beyond noise.)
    assert!(
        sb.ber() + 0.004 >= sa.ber(),
        "B ({}) must not clearly beat A ({})",
        sb.ber(),
        sa.ber()
    );
}

/// §1/§4: encryption is irrelevant to WiTAG — same BER on open, WEP and
/// WPA2 networks, and the AP decrypts every surviving subframe.
#[test]
fn encryption_equivalence() {
    let mut bers = Vec::new();
    for mode in [SecurityMode::Open, SecurityMode::Wep, SecurityMode::Wpa2] {
        let mut cfg = quiet(ExperimentConfig::fig5(1.0, 54));
        cfg.security = mode;
        let mut exp = Experiment::new(cfg).unwrap();
        let stats = exp.run(30);
        assert_eq!(exp.decrypt_failures, 0, "{mode:?}: surviving frames must decrypt");
        bers.push(stats.ber());
    }
    // Identical seeds and identical channel draws -> identical outcomes.
    assert_eq!(bers[0], bers[1]);
    assert_eq!(bers[1], bers[2]);
}

/// §5.2 / Figure 3: phase flipping outperforms on-off keying at the
/// worst (midpoint) position — the doubled channel displacement converts
/// directly into corruption reliability.
#[test]
fn phase_flip_beats_ook() {
    let ber_with = |encoding: BitEncoding| {
        let mut cfg = quiet(ExperimentConfig::fig5(4.0, 55));
        cfg.encoding = encoding;
        let mut exp = Experiment::new(cfg).unwrap();
        exp.run(60).ber()
    };
    let flip = ber_with(BitEncoding::PhaseFlip);
    let ook = ber_with(BitEncoding::OnOffKeying);
    assert!(
        flip < ook,
        "phase flip ({flip}) must beat on-off keying ({ook}) at the midpoint"
    );
}

/// §7 footnote 4: a ring-oscillator tag fails once the temperature moves
/// a few degrees; the crystal tag does not care.
#[test]
fn ring_oscillator_temperature_failure() {
    let ber_with = |clock: Oscillator, dt: f64| {
        let mut cfg = quiet(ExperimentConfig::fig5(1.0, 56));
        cfg.clock = clock;
        cfg.temperature_delta = dt;
        let mut exp = Experiment::new(cfg).unwrap();
        exp.run(25).ber()
    };
    let crystal_hot = ber_with(Oscillator::Crystal { freq_hz: 250e3 }, 20.0);
    let ring_hot = ber_with(Oscillator::Ring { freq_hz: 250e3 }, 20.0);
    assert!(crystal_hot < 0.05, "crystal at +20C: BER {crystal_hot}");
    assert!(ring_hot > 0.2, "ring at +20C must collapse: BER {ring_hot}");
}

/// §4: the AP and client are complete stock models — the experiment's AP
/// path runs only standard receive/deaggregate/block-ACK code, and the
/// tag never prevents an idle network from functioning (all-ones = no
/// interference with the query itself).
#[test]
fn idle_tag_is_invisible() {
    let mut exp = Experiment::new(quiet(ExperimentConfig::fig5(1.0, 57))).unwrap();
    let n = exp.design.bits_per_query();
    // Tag sends all 1s = never reflects differently = every subframe
    // delivered.
    let r = exp.run_round(&vec![1u8; n]);
    assert_eq!(r.errors.errors(), 0, "an idle tag must not corrupt anything");
    assert_eq!(r.readout.bits, vec![1u8; n]);
}

/// Determinism: the whole stack is reproducible from the master seed.
#[test]
fn experiments_are_deterministic() {
    let run = || {
        let mut exp = Experiment::new(ExperimentConfig::fig5(3.0, 58)).unwrap();
        let stats = exp.run(20);
        (stats.errors.false_zeros, stats.errors.false_ones, stats.elapsed)
    };
    assert_eq!(run(), run());
}

/// MOXcatter's headline observation (and the reason WiTAG needs per-frame
/// scheduling rather than per-stream): a single reflecting tag perturbs
/// the whole channel *matrix*, so modulating during a spatially
/// multiplexed A-MPDU corrupts the block-ACK bitmaps of **multiple**
/// streams at once — the tag cannot surgically target one stream.
#[test]
fn moxcatter_single_tag_corrupts_multiple_streams() {
    use witag::moxcatter::{run_point, MoxConfig};
    use witag_obs::NullRecorder;

    let cfg = MoxConfig::default();
    assert_eq!(cfg.streams, 2);
    let point = run_point(0, 1.0, &cfg, &mut NullRecorder);
    assert!(
        point.streams_hit() >= 2,
        "tag near the client must corrupt both multiplexed streams, hit {}/{}",
        point.streams_hit(),
        cfg.streams
    );
    // Attribution is tag-only by construction (idle twin shares the
    // seed): a popcount change is a bitmap change, so it must imply the
    // hit flag (a hit with equal counts — same popcount, different
    // bits — is also legitimate).
    for s in &point.streams {
        assert!(
            s.acked == s.acked_idle || s.hit,
            "acked count changed without a hit flag"
        );
    }
}
