//! Property tests for the rateless fountain codec: whatever loss and
//! reordering pattern the generator dreams up, the decoder either
//! reconstructs the exact bytes or keeps asking for more symbols —
//! never silent corruption — and the degree distribution stays a
//! proper probability distribution for every block size.

mod common;

use common::test_message;
use proptest::prelude::*;
use witag::fountain::{DegreeDistribution, FountainDecoder, FountainEncoder};
use witag_sim::Rng;

/// Hard ceiling on symbols fed per case — far beyond the `k + O(√k)`
/// overhead the robust soliton needs, so hitting it means a real bug,
/// not an unlucky draw.
const SYMBOL_BUDGET: u64 = 4096;

/// Feed symbols from `esis` (in the given order) until the decoder
/// completes, then keep pulling fresh sequential ids if the supplied
/// set was rank-deficient. Returns the number of symbols consumed.
fn decode_from(enc: &FountainEncoder, dec: &mut FountainDecoder, esis: &[u64]) -> u64 {
    let mut fed = 0u64;
    for &esi in esis {
        if dec.complete() {
            break;
        }
        dec.absorb(esi, &enc.symbol(esi));
        fed += 1;
    }
    let mut next = esis.iter().copied().max().map_or(0, |m| m + 1);
    while !dec.complete() && fed < SYMBOL_BUDGET {
        dec.absorb(next, &enc.symbol(next));
        next += 1;
        fed += 1;
    }
    fed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// In-order delivery with random per-symbol loss: the decoder
    /// finishes within the symbol budget and hands back the exact
    /// message, whatever the overhead the loss pattern forces.
    #[test]
    fn roundtrip_at_random_overhead(
        msg_len in 1usize..192,
        msg_seed in any::<u64>(),
        loss_seed in any::<u64>(),
        loss in 0.0f64..0.7,
    ) {
        let message = test_message(msg_len, msg_seed);
        let enc = FountainEncoder::new(&message).expect("valid message");
        let mut dec = FountainDecoder::new(enc.source_count());
        let mut drop = Rng::seed_from_u64(loss_seed);
        let kept: Vec<u64> = (0..SYMBOL_BUDGET).filter(|_| !drop.chance(loss)).collect();
        let fed = decode_from(&enc, &mut dec, &kept);
        prop_assert!(dec.complete(), "budget exhausted after {fed} symbols");
        prop_assert_eq!(dec.assemble(), Some(message));
    }

    /// Arbitrary reordering on top of loss: shuffle a window of symbol
    /// ids, drop a prefix of it, and deliver the rest out of order. The
    /// decoder neither needs sequencing nor duplicates suppression from
    /// the channel — any sufficiently large symbol subset reconstructs
    /// the block byte-identically.
    #[test]
    fn survives_loss_and_reordering(
        msg_len in 1usize..160,
        msg_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        drop_frac in 0.0f64..0.5,
    ) {
        let message = test_message(msg_len, msg_seed);
        let enc = FountainEncoder::new(&message).expect("valid message");
        let k = enc.source_count() as u64;
        let mut esis: Vec<u64> = (0..3 * k + 24).collect();
        let mut rng = Rng::seed_from_u64(shuffle_seed);
        rng.shuffle(&mut esis);
        let dropped = (esis.len() as f64 * drop_frac) as usize;
        let survivors = &esis[dropped..];
        let mut dec = FountainDecoder::new(enc.source_count());
        decode_from(&enc, &mut dec, survivors);
        prop_assert!(dec.complete());
        prop_assert_eq!(dec.assemble(), Some(message));
        prop_assert!(dec.received() as u64 >= k, "cannot finish below rank k");
    }

    /// The robust-soliton table is a probability distribution for every
    /// block size: strictly non-negative, sums to one, and sampling any
    /// quantile lands on a degree in `1..=k`.
    #[test]
    fn degree_distribution_sums_to_one(
        k in 1usize..400,
        u in 0.0f64..1.0,
    ) {
        let dist = DegreeDistribution::robust_soliton(k);
        let total: f64 = dist.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "pdf sums to {total}");
        prop_assert!(dist.probabilities().iter().all(|&p| p >= 0.0));
        let d = dist.sample(u);
        prop_assert!((1..=k).contains(&d), "degree {d} outside 1..={k}");
    }
}
