//! Integration: the reliable transport (`witag::tagnet`) running over
//! the *full* simulation stack — real PHY, channel, tag device, MAC and
//! block ACKs — not a toy bit channel.

use witag::experiment::{Experiment, ExperimentConfig};
use witag::tagnet::{deliver, ArqReader, QueryKind, TagSender};

/// Drive tagnet chunks through real query rounds at a good position.
#[test]
fn message_delivered_over_real_stack() {
    let mut cfg = ExperimentConfig::fig5(1.0, 0xC0DE);
    cfg.link.interference_rate_hz = 0.0;
    let mut exp = Experiment::new(cfg).unwrap();
    let n_bits = exp.design.bits_per_query();

    let message = b"temp=21.5C hum=40%";
    let (got, queries) = deliver(message, n_bits, 200, |tx| {
        exp.run_round(tx).readout.bits
    })
    .expect("message must be delivered");
    assert_eq!(&got, message);
    // 18 bytes = 144 bits -> 8 chunks; clean channel ≈ one query each.
    assert!(queries <= 12, "took {queries} queries on a clean channel");
}

/// Same transport at the worst position (midpoint) with interference:
/// ARQ retransmissions absorb the raw BER and the message still arrives
/// intact.
#[test]
fn message_survives_the_midpoint() {
    let mut exp = Experiment::new(ExperimentConfig::fig5(4.0, 0xC0DF)).unwrap();
    let n_bits = exp.design.bits_per_query();

    let message = b"midpoint!";
    let (got, queries) = deliver(message, n_bits, 400, |tx| {
        exp.run_round(tx).readout.bits
    })
    .expect("ARQ must deliver despite the raw BER");
    assert_eq!(&got, message);
    // 9 bytes = 72 bits -> 4 chunks; allow generous retransmissions.
    assert!(queries >= 4);
}

/// The ARQ pieces compose manually too (chunk-level control).
#[test]
fn manual_arq_over_real_stack() {
    let mut cfg = ExperimentConfig::fig5(2.0, 0xC0E0);
    cfg.link.interference_rate_hz = 0.0;
    let mut exp = Experiment::new(cfg).unwrap();
    let n_bits = exp.design.bits_per_query();

    let mut tag = TagSender::new(b"xy");
    let mut reader = ArqReader::new();
    let mut kind = QueryKind::Advance;
    let mut safety = 0;
    while !tag.done() {
        let tx = tag.answer(kind, n_bits).expect("query fits the framing");
        if tag.done() {
            break;
        }
        let rx = exp.run_round(&tx).readout.bits;
        kind = reader.process(&rx, n_bits);
        safety += 1;
        assert!(safety < 50, "ARQ did not converge");
    }
    assert_eq!(reader.message(2), b"xy");
}
