//! Equivalence contract of the lockstep batch driver
//! (`Experiment::run_batch_obs`): running N independent experiments in
//! lockstep — with the forward A-MPDU decodes of all shards batched
//! through `receive_many_mixed` and the block-ACK legs batched through
//! `legacy_receive_many_mixed`, all over one shared scratch — must be
//! **bit-identical**, per shard, to running each experiment's rounds
//! serially with `run_obs`: same statistics, same event stream, same
//! fault trajectories. This is the contract that lets the parallel
//! runner's single-worker path batch across shards.

use witag::experiment::{Experiment, ExperimentConfig, ExperimentStats};
use witag_faults::FaultPlan;
use witag_obs::{BufferRecorder, Recorder};

fn quiet_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig5(1.0, seed);
    cfg.link.interference_rate_hz = 0.0;
    cfg
}

fn fingerprint(s: &ExperimentStats) -> (usize, usize, usize, usize, u64) {
    (
        s.rounds,
        s.errors.total,
        s.missed_triggers,
        s.lost_block_acks,
        s.elapsed.as_nanos(),
    )
}

/// Serialise a buffered event stream exactly as the JSONL writer would,
/// so "identical event stream" means bytes, not structural equality.
fn trace_bytes(buf: &BufferRecorder) -> String {
    let mut out = String::new();
    for e in buf.events() {
        e.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Build the same shard set twice (identical seeds / trace bases / fault
/// plans) so one copy can run serially and the other in lockstep.
fn build_shards(
    seeds: &[u64],
    plan: Option<&FaultPlan>,
) -> Vec<Experiment> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let mut exp = Experiment::new(quiet_cfg(seed)).unwrap();
            exp.set_trace_base((i * 1000) as u64);
            if let Some(p) = plan {
                let mut shard_plan = p.clone();
                shard_plan.seed = shard_plan.seed.wrapping_add(i as u64);
                exp.attach_faults(shard_plan);
            }
            exp
        })
        .collect()
}

fn check_batch_matches_serial(seeds: &[u64], rounds: &[usize], plan: Option<&FaultPlan>) {
    // Serial reference: each experiment runs its rounds on its own.
    let mut serial_stats = Vec::new();
    let mut serial_traces = Vec::new();
    for (exp, &r) in build_shards(seeds, plan).iter_mut().zip(rounds) {
        let mut buf = BufferRecorder::new();
        serial_stats.push(exp.run_obs(r, &mut buf));
        serial_traces.push(trace_bytes(&buf));
    }

    // Lockstep batched run over a fresh but identically-seeded shard set.
    let mut shards = build_shards(seeds, plan);
    let mut bufs: Vec<BufferRecorder> = (0..shards.len()).map(|_| BufferRecorder::new()).collect();
    let mut recs: Vec<&mut dyn Recorder> = bufs.iter_mut().map(|b| b as &mut dyn Recorder).collect();
    let batch_stats = Experiment::run_batch_obs(&mut shards, rounds, &mut recs);

    for (i, (s, b)) in serial_stats.iter().zip(batch_stats.iter()).enumerate() {
        assert_eq!(
            fingerprint(s),
            fingerprint(b),
            "shard {i}: batched stats must be bit-identical to serial"
        );
    }
    for (i, (trace, buf)) in serial_traces.iter().zip(bufs.iter()).enumerate() {
        assert_eq!(
            trace,
            &trace_bytes(buf),
            "shard {i}: batched event stream must be byte-identical to serial"
        );
    }
}

#[test]
fn batched_lockstep_matches_serial_per_shard() {
    check_batch_matches_serial(&[11, 22, 33], &[8, 8, 8], None);
}

#[test]
fn batched_lockstep_matches_serial_with_ragged_round_counts() {
    // Shards retire at different rounds; the lockstep driver must keep
    // the survivors bit-exact after others finish.
    check_batch_matches_serial(&[5, 6, 7, 8], &[2, 9, 1, 5], None);
}

#[test]
fn batched_lockstep_matches_serial_under_faults() {
    // Fault trajectories thread through all three phases (verdict in
    // prepare, BA-loss gating in mid, readout corruption in finish) —
    // the injector's single RNG stream must see draws in the same order.
    let plan = FaultPlan::hostile(99);
    check_batch_matches_serial(&[44, 55], &[12, 12], Some(&plan));
}

#[test]
fn batched_lockstep_handles_empty_and_single_shard() {
    check_batch_matches_serial(&[], &[], None);
    check_batch_matches_serial(&[77], &[5], None);
}
