//! Determinism contract of the sharded parallel runner: for a fixed
//! configuration, `Experiment::run_parallel` must return bit-identical
//! statistics for **every** thread count — one worker, four workers, or
//! more workers than shards. This is what makes parallel sweeps safe to
//! check against golden numbers and safe to resume on machines with
//! different core counts.

use witag::experiment::{Experiment, ExperimentConfig, ExperimentStats, PARALLEL_SHARD_ROUNDS};
use witag_faults::FaultPlan;

fn quiet_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig5(1.0, seed);
    cfg.link.interference_rate_hz = 0.0;
    cfg
}

fn fingerprint(s: &ExperimentStats) -> (usize, usize, usize, usize, u64, Vec<u64>) {
    (
        s.rounds,
        s.errors.total,
        s.missed_triggers,
        s.lost_block_acks,
        s.elapsed.as_nanos(),
        s.window_bers.samples().iter().map(|b| b.to_bits()).collect(),
    )
}

#[test]
fn parallel_stats_are_thread_count_invariant() {
    let cfg = quiet_cfg(41);
    let rounds = 3 * PARALLEL_SHARD_ROUNDS + 7; // force a ragged last shard
    let baseline = Experiment::run_parallel(&cfg, None, rounds, 1).unwrap();
    assert_eq!(baseline.rounds, rounds);
    for threads in [2, 4, 16] {
        let run = Experiment::run_parallel(&cfg, None, rounds, threads).unwrap();
        assert_eq!(
            fingerprint(&run),
            fingerprint(&baseline),
            "threads={threads} must be bit-identical to threads=1"
        );
    }
}

#[test]
fn parallel_stats_are_thread_count_invariant_under_faults() {
    // The fault path re-seeds the plan per shard from the same derived
    // stream, so hostile schedules must be invariant too.
    let cfg = quiet_cfg(43);
    let plan = FaultPlan::hostile(17);
    let rounds = 2 * PARALLEL_SHARD_ROUNDS;
    let baseline = Experiment::run_parallel(&cfg, Some(&plan), rounds, 1).unwrap();
    assert!(
        baseline.errors.errors() > 0,
        "a hostile plan must actually inject faults"
    );
    for threads in [3, 8] {
        let run = Experiment::run_parallel(&cfg, Some(&plan), rounds, threads).unwrap();
        assert_eq!(
            fingerprint(&run),
            fingerprint(&baseline),
            "faulted threads={threads} must match threads=1"
        );
    }
}

#[test]
fn shards_depend_on_master_seed() {
    // Different master seeds must produce different shard streams — the
    // derivation cannot collapse to a constant.
    let a = Experiment::run_parallel(&quiet_cfg(1), None, PARALLEL_SHARD_ROUNDS, 2).unwrap();
    let b = Experiment::run_parallel(&quiet_cfg(2), None, PARALLEL_SHARD_ROUNDS, 2).unwrap();
    assert_ne!(
        a.elapsed, b.elapsed,
        "different seeds must draw different backoffs/fading"
    );
}

#[test]
fn parallel_results_are_statistically_consistent_with_serial() {
    // Shards use derived seeds, so the parallel runner is a different —
    // but equally valid — sample of the same scenario. On a quiet
    // strong link both must see a clean channel.
    let cfg = quiet_cfg(47);
    let rounds = 2 * PARALLEL_SHARD_ROUNDS;
    let serial = {
        let mut exp = Experiment::new(cfg.clone()).unwrap();
        exp.run(rounds)
    };
    let parallel = Experiment::run_parallel(&cfg, None, rounds, 4).unwrap();
    assert_eq!(parallel.rounds, serial.rounds);
    assert!(serial.ber() < 0.02, "serial BER {}", serial.ber());
    assert!(parallel.ber() < 0.02, "parallel BER {}", parallel.ber());
    assert_eq!(parallel.window_bers.len(), 2, "one BER sample per shard");
}
