//! Fleet-layer determinism and fairness gates.
//!
//! Pins the witag-net contract the acceptance criteria name: same seed
//! → byte-identical `net.*` trace and identical aggregate stats at any
//! thread count; different seed → different run; and the airtime-fair
//! scheduler bounds the share an adversarially expensive tag can take
//! while round-robin lets it hog the medium.

use witag_faults::FaultPlan;
use witag_net::{
    run_fleet, run_metro, run_replicas, FleetConfig, MetroConfig, SchedulerKind, Transport,
};
use witag_obs::{BufferRecorder, NullRecorder};
use witag_sim::time::Duration;

/// Serialise a buffered event stream exactly as the JSONL writer would,
/// so "byte-identical trace" means bytes, not structural equality.
fn trace_bytes(buf: &BufferRecorder) -> String {
    let mut out = String::new();
    for e in buf.events() {
        e.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// A contended fleet with hostile fault plans on alternating links —
/// enough moving parts (fault RNG, collision corruption, cooldowns)
/// that any nondeterminism would show.
fn hostile_fleet(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::inventory(
        2,
        8,
        SchedulerKind::Fair,
        Duration::millis(1500),
        seed,
    );
    for (i, p) in cfg.profiles.iter_mut().enumerate() {
        if i % 2 == 0 {
            p.faults = Some(FaultPlan::hostile_scaled(seed ^ i as u64, 0.5));
        }
    }
    cfg
}

#[test]
fn replica_traces_are_byte_identical_across_thread_counts() {
    let cfg = hostile_fleet(7);
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let reports_one = run_replicas(&cfg, 3, 1, &mut one).expect("valid fleet");
    let reports_four = run_replicas(&cfg, 3, 4, &mut four).expect("valid fleet");
    assert_eq!(reports_one, reports_four, "aggregate stats must not depend on threads");
    assert_eq!(trace_bytes(&one), trace_bytes(&four), "traces must be byte-identical");
    assert!(!one.events().is_empty());
}

#[test]
fn different_seeds_give_different_runs() {
    let mut a = BufferRecorder::new();
    let mut b = BufferRecorder::new();
    let ra = run_replicas(&hostile_fleet(7), 2, 2, &mut a).expect("valid fleet");
    let rb = run_replicas(&hostile_fleet(8), 2, 2, &mut b).expect("valid fleet");
    assert_ne!(trace_bytes(&a), trace_bytes(&b), "seed must matter");
    assert_ne!(ra, rb);
}

#[test]
fn hundred_tag_fair_inventory_is_deterministic_and_complete() {
    // The acceptance-criteria fleet: 100 tags under `fair` must finish a
    // full inventory read, identically at 1 and 4 threads.
    let cfg = FleetConfig::inventory(2, 100, SchedulerKind::Fair, Duration::secs(30), 42);
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let a = run_replicas(&cfg, 1, 1, &mut one).expect("valid fleet");
    let b = run_replicas(&cfg, 1, 4, &mut four).expect("valid fleet");
    assert_eq!(a, b);
    assert_eq!(trace_bytes(&one), trace_bytes(&four));
    let rep = &a[0];
    assert_eq!(rep.delivered(), 100, "full inventory must complete");
    assert!(rep.elapsed < cfg.horizon, "must finish before the horizon");
    assert!(rep.latency_percentile(50.0).is_some());
    assert!(rep.latency_percentile(99.0).is_some());
    let shares = rep.airtime_shares();
    assert_eq!(shares.len(), 100);
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

/// One client, four tags, tag 0 with 8× the per-round airtime and a
/// message too long for anyone to finish inside the horizon — a pure
/// airtime-share contest.
fn starvation_fleet(kind: SchedulerKind) -> FleetConfig {
    let mut cfg = FleetConfig::inventory(1, 4, kind, Duration::secs(2), 99);
    for (i, p) in cfg.profiles.iter_mut().enumerate() {
        p.subframe_bytes = if i == 0 { 48 * 8 } else { 48 };
        p.channel_bits = 56;
        p.message = vec![0xA5; 1200];
    }
    cfg
}

#[test]
fn airtime_fair_bounds_the_adversarial_fast_tag() {
    let rep = run_fleet(&starvation_fleet(SchedulerKind::Fair), &mut NullRecorder)
        .expect("valid fleet");
    let shares = rep.airtime_shares();
    assert!(
        shares[0] <= 0.40,
        "fair must cap the 8x tag: shares {shares:?}"
    );
    for (tag, &s) in shares.iter().enumerate() {
        assert!(
            s >= 0.15,
            "fair must not starve tag {tag}: shares {shares:?}"
        );
    }
}

#[test]
fn fountain_replica_traces_are_byte_identical_across_thread_counts() {
    // The rateless transport adds per-link decoder state (esi belief,
    // placement, repair) on top of the fault machinery — all of it must
    // still replay byte-identically at any worker count.
    let cfg = hostile_fleet(11).with_transport(Transport::Fountain);
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let a = run_replicas(&cfg, 3, 1, &mut one).expect("valid fleet");
    let b = run_replicas(&cfg, 3, 4, &mut four).expect("valid fleet");
    assert_eq!(a, b, "fountain aggregate stats must not depend on threads");
    assert_eq!(trace_bytes(&one), trace_bytes(&four));
    assert!(!one.events().is_empty());
}

#[test]
fn fountain_hundred_tag_inventory_is_deterministic_and_complete() {
    // Clean-channel mirror of the ARQ completeness gate: a systematic
    // fountain session costs exactly k symbol rounds per tag, so the
    // full 100-tag inventory must still finish inside the horizon.
    let cfg = FleetConfig::inventory(2, 100, SchedulerKind::Fair, Duration::secs(30), 42)
        .with_transport(Transport::Fountain);
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let a = run_replicas(&cfg, 1, 1, &mut one).expect("valid fleet");
    let b = run_replicas(&cfg, 1, 4, &mut four).expect("valid fleet");
    assert_eq!(a, b);
    assert_eq!(trace_bytes(&one), trace_bytes(&four));
    assert_eq!(a[0].delivered(), 100, "full inventory must complete");
    assert!(a[0].elapsed < cfg.horizon);
}

#[test]
fn fountain_beats_arq_on_the_hostile_loaded_fleet() {
    // The PR-6 acceptance condition, pinned: under the stock PR-1
    // hostile fault plan on every link of a 100-tag loaded fleet, the
    // fountain transport delivers at least the ARQ stack's payload
    // count with lower p99 latency. Mirrors the perf_gate intensity-1.0
    // rows in BENCH_net.json.
    let run = |transport: Transport| {
        let mut cfg =
            FleetConfig::inventory(2, 100, SchedulerKind::Fair, Duration::secs(30), 0xBE)
                .with_transport(transport);
        for (i, p) in cfg.profiles.iter_mut().enumerate() {
            p.faults = Some(FaultPlan::hostile(0xBE ^ i as u64));
        }
        run_fleet(&cfg, &mut NullRecorder).expect("viable fleet")
    };
    let arq = run(Transport::Arq);
    let fount = run(Transport::Fountain);
    assert!(
        fount.delivered() >= arq.delivered(),
        "fountain must deliver at least ARQ's count: {} vs {}",
        fount.delivered(),
        arq.delivered()
    );
    let arq_p99 = arq.latency_percentile(99.0).expect("arq delivered something");
    let fount_p99 = fount.latency_percentile(99.0).expect("fountain delivered something");
    assert!(
        fount_p99 < arq_p99,
        "fountain p99 must beat ARQ: {fount_p99:.0}us vs {arq_p99:.0}us"
    );
}

#[test]
fn pred_policy_is_deterministic_and_completes_the_inventory() {
    // The traffic-predictive policy folds an EWMA + Markov busy model
    // into every medium-access decision; its deferrals must replay
    // byte-identically across thread counts and must not cost delivery
    // on the standard inventory fleet.
    let cfg = hostile_fleet(13);
    let cfg = FleetConfig {
        scheduler: SchedulerKind::Pred,
        ..cfg
    };
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let a = run_replicas(&cfg, 2, 1, &mut one).expect("valid fleet");
    let b = run_replicas(&cfg, 2, 4, &mut four).expect("valid fleet");
    assert_eq!(a, b);
    assert_eq!(trace_bytes(&one), trace_bytes(&four));
    assert!(
        trace_bytes(&one).contains("\"kind\":\"net.predict\""),
        "pred policy must emit net.predict events"
    );
}

#[test]
fn ten_thousand_tag_metro_is_byte_identical_across_thread_counts() {
    // The metro-scale acceptance pin: a 10k-tag, 16-cell duty-cycled
    // metro on a single shared channel (so contention domains span
    // multiple cells and the hierarchical budget layer is live) must
    // produce byte-identical traces and identical reports at 1 and 4
    // threads.
    let mut cfg = MetroConfig::inventory(
        16,
        16,
        10_000,
        SchedulerKind::Fair,
        Duration::secs(60),
        0xA11CE,
    )
    .with_duty_cycle(Duration::secs(4), 0.08);
    cfg.channels = 1;
    let mut one = BufferRecorder::new();
    let mut four = BufferRecorder::new();
    let a = run_metro(&cfg, 1, &mut one).expect("valid metro");
    let b = run_metro(&cfg, 4, &mut four).expect("valid metro");
    assert_eq!(a, b, "metro reports must not depend on threads");
    assert_eq!(trace_bytes(&one), trace_bytes(&four), "metro traces must be byte-identical");
    assert!(a.domains < a.cells, "single channel must merge cells into domains");
    assert!(a.delivered > 0);
    let bytes = trace_bytes(&one);
    assert!(bytes.contains("\"kind\":\"net.cell_assign\""));
    assert!(bytes.contains("\"kind\":\"net.cell_epoch\""));
}

#[test]
fn round_robin_lets_the_heavy_tag_hog_the_medium() {
    // The counterpoint proving the starvation test has teeth: grant-fair
    // round robin hands the 8x tag the majority of the airtime.
    let rep = run_fleet(&starvation_fleet(SchedulerKind::Rr), &mut NullRecorder)
        .expect("valid fleet");
    let shares = rep.airtime_shares();
    assert!(
        shares[0] >= 0.50,
        "rr should let the heavy tag dominate: shares {shares:?}"
    );
}
