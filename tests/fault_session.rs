//! The headline robustness claim: under the default hostile fault plan
//! the selective-repeat session delivers a 1 KiB message CRC-clean
//! where the stop-and-wait baseline fails outright or burns at least
//! twice the rounds. Everything here is deterministic — same seeds,
//! same plans, same outcomes on every run.

mod common;

use common::{test_message, SyntheticChannel};
use witag::tagnet::{
    deliver, run_session, SessionConfig, SessionOutcome,
};
use witag_faults::FaultPlan;

const CHANNEL_BITS: usize = 62;
const KIB: usize = 1024;

/// Shared round budget for the hostile comparison.
const BUDGET: usize = 8192;

fn hostile_session(message: &[u8], seed: u64) -> witag::tagnet::SessionReport {
    let mut ch = SyntheticChannel::new(FaultPlan::hostile(seed), CHANNEL_BITS);
    let cfg = SessionConfig {
        max_rounds: BUDGET,
        window: 8,
        max_diversity: 4,
        ..SessionConfig::default()
    };
    run_session(message, CHANNEL_BITS, &cfg, |_q, tx| ch.round(tx)).expect("valid session setup")
}

/// Stop-and-wait over the same synthetic hostile channel. A lost block
/// ACK (or query) yields an all-ones "no information" readout, exactly
/// what the real stack hands the baseline.
fn hostile_stop_and_wait(message: &[u8], seed: u64) -> Option<(Vec<u8>, usize)> {
    let mut ch = SyntheticChannel::new(FaultPlan::hostile(seed), CHANNEL_BITS);
    deliver(message, CHANNEL_BITS, BUDGET, |tx| {
        ch.round(tx)
            .readout
            .unwrap_or_else(|| vec![1u8; CHANNEL_BITS])
    })
}

#[test]
fn session_delivers_1kib_where_stop_and_wait_cannot() {
    let message = test_message(KIB, 0xA11CE);
    let report = hostile_session(&message, 1234);
    let delivered = match &report.outcome {
        SessionOutcome::Delivered(bytes) => bytes,
        other => panic!("session must deliver under hostile faults, got {other:?} ({:?})", report.stats),
    };
    assert_eq!(delivered, &message, "delivery must be CRC-clean and exact");

    let baseline = hostile_stop_and_wait(&message, 1234);
    eprintln!(
        "session: {:?} goodput {:.3}; stop-and-wait: {:?}",
        report.stats,
        report.stats.goodput_ratio(),
        baseline.as_ref().map(|(_, q)| q)
    );
    match &baseline {
        None => {
            // Stop-and-wait exhausted the same budget without the
            // message: the session's resilience is the difference.
            assert!(
                report.stats.rounds < BUDGET,
                "session must finish inside the budget: {:?}",
                report.stats
            );
        }
        Some((bytes, queries)) => {
            assert_eq!(bytes, &message);
            assert!(
                *queries >= 2 * report.stats.rounds,
                "stop-and-wait must need >=2x the rounds: baseline {queries} vs session {}",
                report.stats.rounds
            );
        }
    }
}

#[test]
fn hostile_comparison_is_deterministic() {
    let message = test_message(256, 77);
    let a = hostile_session(&message, 42);
    let b = hostile_session(&message, 42);
    assert_eq!(a, b, "same plan + seed must reproduce bit-identically");
    let ba = hostile_stop_and_wait(&message, 42);
    let bb = hostile_stop_and_wait(&message, 42);
    assert_eq!(ba, bb);
}
