//! Property tests for the resilient session transport: whatever fault
//! plan the generator dreams up, the session either hands back the
//! exact bytes or fails loudly — and everything is a pure function of
//! the seeds.

mod common;

use common::{test_message, SyntheticChannel};
use proptest::prelude::*;
use witag::tagnet::{
    decode_chunk, encode_chunk, run_session, SessionConfig, SessionFailure, SessionOutcome,
    CHUNK_PAYLOAD_BITS, MIN_CHANNEL_BITS,
};
use witag::FecLayout;
use witag_faults::FaultPlan;

const CHANNEL_BITS: usize = 62;

/// A modest budget so heavy plans exercise the failure path too.
const BUDGET: usize = 1500;

fn cfg() -> SessionConfig {
    SessionConfig {
        max_rounds: BUDGET,
        ..SessionConfig::default()
    }
}

fn run(message: &[u8], plan: FaultPlan) -> (witag::tagnet::SessionReport, Vec<u8>, u64) {
    let mut ch = SyntheticChannel::new(plan, CHANNEL_BITS);
    let report =
        run_session(message, CHANNEL_BITS, &cfg(), |_q, tx| ch.round(tx)).expect("valid setup");
    let trace = ch.trace();
    (report, trace, ch.rounds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivery is all-or-nothing: under ANY fault intensity the session
    /// returns the message byte-identical or an explicit failure. No
    /// silent corruption, no truncation, no reordering.
    #[test]
    fn no_silent_corruption_under_any_plan(
        seed in any::<u64>(),
        intensity in 0.0f64..1.3,
        msg_len in 0usize..192,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (report, _, _) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        match report.outcome {
            SessionOutcome::Delivered(bytes) => prop_assert_eq!(bytes, message),
            SessionOutcome::Failed(
                SessionFailure::BudgetExhausted | SessionFailure::CrcMismatch,
            ) => {}
        }
        prop_assert!(report.stats.rounds <= BUDGET);
    }

    /// The whole stack — fault models, channel noise, session control
    /// loop — replays bit-identically from the seeds: same outcome,
    /// same statistics, same per-round fault trace.
    #[test]
    fn same_seed_same_trace_same_outcome(
        seed in any::<u64>(),
        intensity in 0.0f64..1.2,
        msg_len in 1usize..128,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (ra, ta, na) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        let (rb, tb, nb) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(na, nb);
    }

    /// A quiet plan (intensity zero) must never fail: the fault layer
    /// at rest costs nothing but the ambient channel noise.
    #[test]
    fn zero_intensity_always_delivers(
        seed in any::<u64>(),
        msg_len in 0usize..96,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (report, _, _) = run(&message, FaultPlan::hostile_scaled(seed, 0.0));
        match report.outcome {
            SessionOutcome::Delivered(bytes) => prop_assert_eq!(bytes, message),
            other => prop_assert!(false, "quiet plan must deliver, got {:?}", other),
        }
    }
}

/// Derive a deterministic 20-bit chunk payload from a compact seed (the
/// proptest shim has no vec strategy; a u32 carries more than enough
/// entropy for 20 bits).
fn chunk_payload(bits: u32) -> Vec<u8> {
    (0..CHUNK_PAYLOAD_BITS)
        .map(|i| ((bits >> i) & 1) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `encode_chunk` → `decode_chunk` round-trips seq and payload for
    /// every per-query capacity the transport accepts.
    #[test]
    fn chunk_roundtrips_for_all_transport_capacities(
        seq in 0u8..16,
        payload_bits in any::<u32>(),
        channel_bits in MIN_CHANNEL_BITS..201usize,
    ) {
        let payload = chunk_payload(payload_bits);
        let encoded = encode_chunk(seq, &payload, channel_bits).expect("capacity checked");
        prop_assert_eq!(encoded.len(), channel_bits, "idle-padded to capacity");
        prop_assert_eq!(decode_chunk(&encoded, channel_bits), Some((seq, payload)));
    }

    /// One flipped bit anywhere — FEC region or idle pad — is absorbed:
    /// Hamming(7,4) corrects a single error per codeword and the pad is
    /// never inspected.
    #[test]
    fn single_bit_flip_is_corrected(
        seq in 0u8..16,
        payload_bits in any::<u32>(),
        channel_bits in MIN_CHANNEL_BITS..201usize,
        flip in any::<usize>(),
    ) {
        let payload = chunk_payload(payload_bits);
        let mut encoded = encode_chunk(seq, &payload, channel_bits).expect("capacity checked");
        let pos = flip % encoded.len();
        encoded[pos] ^= 1;
        prop_assert_eq!(decode_chunk(&encoded, channel_bits), Some((seq, payload)));
    }

    /// Anything shorter than the FEC region is rejected outright — a
    /// truncated readout can never masquerade as a chunk.
    #[test]
    fn truncated_chunks_are_rejected(
        seq in 0u8..16,
        payload_bits in any::<u32>(),
        channel_bits in MIN_CHANNEL_BITS..201usize,
        keep_frac in 0.0f64..1.0,
    ) {
        let payload = chunk_payload(payload_bits);
        let encoded = encode_chunk(seq, &payload, channel_bits).expect("capacity checked");
        let fec_bits = FecLayout::fit(channel_bits).channel_bits();
        let keep = ((fec_bits - 1) as f64 * keep_frac) as usize;
        prop_assert_eq!(decode_chunk(&encoded[..keep], channel_bits), None);
    }

    /// Heavy damage — the leading half of the FEC region flipped — can
    /// never decode back to the original chunk: the interleaver puts ≥3
    /// of those flips in every codeword, beyond any Hamming correction,
    /// so either the CRC kills it or the decoded bits differ.
    #[test]
    fn heavy_damage_never_decodes_to_the_original(
        seq in 0u8..16,
        payload_bits in any::<u32>(),
        channel_bits in MIN_CHANNEL_BITS..201usize,
    ) {
        let payload = chunk_payload(payload_bits);
        let mut encoded = encode_chunk(seq, &payload, channel_bits).expect("capacity checked");
        let fec_bits = FecLayout::fit(channel_bits).channel_bits();
        for b in encoded.iter_mut().take(fec_bits.div_ceil(2)) {
            *b ^= 1;
        }
        prop_assert_ne!(decode_chunk(&encoded, channel_bits), Some((seq, payload)));
    }
}
