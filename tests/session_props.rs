//! Property tests for the resilient session transport: whatever fault
//! plan the generator dreams up, the session either hands back the
//! exact bytes or fails loudly — and everything is a pure function of
//! the seeds.

mod common;

use common::{test_message, SyntheticChannel};
use proptest::prelude::*;
use witag::tagnet::{run_session, SessionConfig, SessionFailure, SessionOutcome};
use witag_faults::FaultPlan;

const CHANNEL_BITS: usize = 62;

/// A modest budget so heavy plans exercise the failure path too.
const BUDGET: usize = 1500;

fn cfg() -> SessionConfig {
    SessionConfig {
        max_rounds: BUDGET,
        ..SessionConfig::default()
    }
}

fn run(message: &[u8], plan: FaultPlan) -> (witag::tagnet::SessionReport, Vec<u8>, u64) {
    let mut ch = SyntheticChannel::new(plan, CHANNEL_BITS);
    let report =
        run_session(message, CHANNEL_BITS, &cfg(), |_q, tx| ch.round(tx)).expect("valid setup");
    let trace = ch.trace();
    (report, trace, ch.rounds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivery is all-or-nothing: under ANY fault intensity the session
    /// returns the message byte-identical or an explicit failure. No
    /// silent corruption, no truncation, no reordering.
    #[test]
    fn no_silent_corruption_under_any_plan(
        seed in any::<u64>(),
        intensity in 0.0f64..1.3,
        msg_len in 0usize..192,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (report, _, _) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        match report.outcome {
            SessionOutcome::Delivered(bytes) => prop_assert_eq!(bytes, message),
            SessionOutcome::Failed(
                SessionFailure::BudgetExhausted | SessionFailure::CrcMismatch,
            ) => {}
        }
        prop_assert!(report.stats.rounds <= BUDGET);
    }

    /// The whole stack — fault models, channel noise, session control
    /// loop — replays bit-identically from the seeds: same outcome,
    /// same statistics, same per-round fault trace.
    #[test]
    fn same_seed_same_trace_same_outcome(
        seed in any::<u64>(),
        intensity in 0.0f64..1.2,
        msg_len in 1usize..128,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (ra, ta, na) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        let (rb, tb, nb) = run(&message, FaultPlan::hostile_scaled(seed, intensity));
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(na, nb);
    }

    /// A quiet plan (intensity zero) must never fail: the fault layer
    /// at rest costs nothing but the ambient channel noise.
    #[test]
    fn zero_intensity_always_delivers(
        seed in any::<u64>(),
        msg_len in 0usize..96,
        msg_seed in any::<u64>(),
    ) {
        let message = test_message(msg_len, msg_seed);
        let (report, _, _) = run(&message, FaultPlan::hostile_scaled(seed, 0.0));
        match report.outcome {
            SessionOutcome::Delivered(bytes) => prop_assert_eq!(bytes, message),
            other => prop_assert!(false, "quiet plan must deliver, got {:?}", other),
        }
    }
}
