#!/usr/bin/env sh
# Tier-1 verification: build, test, lint — one reproducible command.
# Works fully offline (proptest/criterion are path-dep shims under crates/).
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Static-assurance gate: witag-lint walks every workspace source file and
# fails (nonzero exit) on any determinism / panic-freedom / no_alloc /
# hygiene finding. The JSON artifact is validated like the perf report.
cargo run -q --release -p witag-lint -- --json LINT_report.json
python3 -c "import json; r = json.load(open('LINT_report.json')); assert r['findings'] == [], r['findings']"

# Perf gate smoke: run the baseline binary in quick mode (tiny iteration
# counts, same code paths) and assert it emits parseable JSON. Thresholds
# are judged by humans against EXPERIMENTS.md § "PERF GATE", not here.
WITAG_PERF_QUICK=1 WITAG_PERF_OUT=/tmp/witag_perf_smoke.json \
    cargo run -q --release -p witag-bench --bin perf_gate > /dev/null
python3 -c "import json; json.load(open('/tmp/witag_perf_smoke.json'))"
