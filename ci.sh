#!/usr/bin/env sh
# Tier-1 verification: build, test, lint — one reproducible command.
# Works fully offline (proptest/criterion are path-dep shims under crates/).
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Rustdoc must build clean: the observability schema and Recorder contract
# live partly in doc comments, so doc warnings are treated as errors.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

# Static-assurance gate: witag-lint walks every workspace source file,
# builds the whole-workspace call graph, and fails (nonzero exit) on any
# per-file finding (determinism / panic-freedom / no_alloc / hygiene) or
# interprocedural finding (transitive no_alloc, panic reachability,
# determinism taint, obs-schema and simd cfg parity). The committed
# witag-lint/2 JSON artifact must match what the tree produces — a stale
# LINT_report.json fails the drift check below.
cargo run -q --release -p witag-lint -- --threads 1 --json LINT_report.json
python3 -c "
import json
r = json.load(open('LINT_report.json'))
assert r['schema'] == 'witag-lint/2', r['schema']
assert r['findings'] == [], r['findings']
"
git diff --exit-code -- LINT_report.json

# Parallel determinism: the report must be byte-identical no matter how
# many worker threads scanned the files.
cargo run -q --release -p witag-lint -- --threads 4 --json /tmp/witag_lint_t4.json
cmp LINT_report.json /tmp/witag_lint_t4.json

# The linter's own fixture suites (resolver edge pins, virtual-workspace
# pass acceptance) also run under the simd feature so the parity pass and
# the kernels see the flag from both sides.
cargo test -q -p witag-lint -p witag-phy --features simd

# Perf gate smoke: run the baseline binary in quick mode (tiny iteration
# counts, same code paths) and assert it emits parseable JSON — both the
# PHY baseline and the net_scale fleet sweep. Most thresholds are judged
# by humans against EXPERIMENTS.md § "PERF GATE", but the receive-chain
# speedup is gated here: the quick run (a portable build, like the
# committed configs.portable section — never compare a portable build
# against the tuned simd_native headline) must stay within 30% of the
# committed value, so a kernel regression cannot land silently. The 30%
# slack absorbs quick-mode iteration noise, not real regressions.
WITAG_PERF_QUICK=1 WITAG_PERF_OUT=/tmp/witag_perf_smoke.json \
    WITAG_PERF_NET_OUT=/tmp/witag_net_smoke.json \
    cargo run -q --release -p witag-bench --bin perf_gate > /dev/null
python3 -c "import json; json.load(open('/tmp/witag_perf_smoke.json'))"
python3 - <<'EOF'
import json
r = json.load(open('/tmp/witag_perf_smoke.json'))
assert r['schema'] == 'witag-phy-bench-v3', r['schema']
rows = r['mimo']['rows']
seen = {(row['streams'], row['equaliser']) for row in rows}
for nss in (1, 2, 3):
    for eq in ('zf', 'mmse'):
        assert (nss, eq) in seen, f'missing mimo row {nss}x{nss} {eq}'
for row in rows:
    assert row['receive_mu_256B_per_stream_ns'] > 0, row
print(f"mimo gate: {len(rows)} receive_mu rows — ok")
EOF
python3 - <<'EOF'
import json
r = json.load(open('/tmp/witag_net_smoke.json'))
assert r['schema'] == 'witag-net-scale-v4', r['schema']
assert r['scale'], r
rows = r['metro']['rows']
assert rows, 'quick mode must still exercise the metro engine'
for row in rows:
    assert row['fair_delivered'] > 0, row
    assert row['goodput_ratio'] > 1.0, f"metro scheduling must beat serial polling: {row}"
print(f"net gate: {len(r['scale'])} fleet rows, {len(rows)} metro rows — ok")
EOF
python3 - <<'EOF'
import json
cur = json.load(open('/tmp/witag_perf_smoke.json'))
ref = json.load(open('BENCH_phy.json'))
assert cur['build']['config'] == 'portable', cur['build']
committed = ref['configs']['portable']['speedup_vs_seed_receive_chain']
measured = cur['speedup_vs_seed']['receive_chain']
assert measured >= 0.7 * committed, (
    f"receive-chain speedup regressed: measured {measured:.2f}x vs "
    f"committed portable {committed:.2f}x (floor {0.7 * committed:.2f}x)")
print(f"perf gate: receive chain {measured:.2f}x vs committed {committed:.2f}x — ok")
EOF

# Trace smoke: a parallel sweep streamed to a witag-obs/2 JSONL trace,
# then aggregated by `report`. Asserts the trace carries the schema
# header and that the aggregator sees events (docs/OBS_SCHEMA.md).
cargo run -q --release -p witag-cli -- sweep --from 1 --to 2 --step 1 \
    --rounds 10 --threads 2 --trace /tmp/witag_trace_smoke.jsonl
head -n 1 /tmp/witag_trace_smoke.jsonl | grep -q '"schema":"witag-obs/2"'
cargo run -q --release -p witag-cli -- report /tmp/witag_trace_smoke.jsonl \
    | grep -q 'sweep_point'

# Fleet smoke: a contended multi-tag run under the airtime-fair scheduler,
# traced and then aggregated — the report must see the net.* events.
cargo run -q --release -p witag-cli -- net --clients 2 --tags 8 \
    --scheduler fair --trace /tmp/witag_net_trace_smoke.jsonl
grep -q '"kind":"net.grant"' /tmp/witag_net_trace_smoke.jsonl
cargo run -q --release -p witag-cli -- report /tmp/witag_net_trace_smoke.jsonl \
    | grep -q 'fleet sessions'

# Rateless transport smoke: the same contended fleet over the fountain
# transport. The trace must carry the fountain session events and still
# aggregate cleanly.
cargo run -q --release -p witag-cli -- net --clients 2 --tags 8 \
    --scheduler fair --transport fountain \
    --trace /tmp/witag_fountain_trace_smoke.jsonl
grep -q '"kind":"net.session_done"' /tmp/witag_fountain_trace_smoke.jsonl
cargo run -q --release -p witag-cli -- report /tmp/witag_fountain_trace_smoke.jsonl \
    | grep -q 'fleet sessions'

# Metro smoke: the spatial-cell engine at toy scale. The trace must carry
# the metro-specific kinds (cell topology up front, a budget-epoch close
# per cell) and still aggregate cleanly through `report`.
cargo run -q --release -p witag-cli -- net --cells 4 --readers 4 --tags 200 \
    --duty 0.08 --horizon 10000 --trace /tmp/witag_metro_trace_smoke.jsonl
grep -q '"kind":"net.cell_assign"' /tmp/witag_metro_trace_smoke.jsonl
grep -q '"kind":"net.cell_epoch"' /tmp/witag_metro_trace_smoke.jsonl
cargo run -q --release -p witag-cli -- report /tmp/witag_metro_trace_smoke.jsonl \
    | grep -q 'fleet sessions'

# MOXcatter smoke: the spatial-multiplexing scenario — a streams × distance
# sweep traced to JSONL. The trace must carry the phy.mimo.* family (one
# sound per point, one stream row per spatial stream) and the sweep must
# show the headline effect: at 2 streams the single tag corrupts both
# block-ACK bitmaps.
cargo run -q --release -p witag-cli -- mox --streams 1,2 --from 1 --to 3 \
    --step 1 --threads 2 --trace /tmp/witag_mox_trace_smoke.jsonl
grep -q '"kind":"phy.mimo.sound"' /tmp/witag_mox_trace_smoke.jsonl
grep -q '"kind":"phy.mimo.stream"' /tmp/witag_mox_trace_smoke.jsonl
cargo run -q --release -p witag-cli -- report /tmp/witag_mox_trace_smoke.jsonl \
    | grep -q 'phy.mimo.sound'
python3 - <<'EOF'
import json
hits = {}
for line in open('/tmp/witag_mox_trace_smoke.jsonl'):
    e = json.loads(line)
    if e.get('kind') == 'phy.mimo.sound':
        streams = {}
        hits[e['index']] = (e['streams'], streams)
    elif e.get('kind') == 'phy.mimo.stream':
        hits[e['index']][1][e['stream']] = e['hit']
assert hits, 'mox trace carried no phy.mimo.sound events'
for index, (n, streams) in hits.items():
    assert len(streams) == n, f'point {index}: {len(streams)} stream rows, want {n}'
    if n >= 2:
        assert all(streams.values()), \
            f'point {index}: tag must corrupt every multiplexed stream, got {streams}'
print(f'mox gate: {len(hits)} sweep points — ok')
EOF

# Docs link check: every relative markdown link in the top-level docs and
# docs/ must resolve to a real file — ARCHITECTURE.md, DESIGN.md,
# EXPERIMENTS.md and OBS_SCHEMA.md cross-reference each other heavily and
# a rename must not leave dangling pointers.
python3 - <<'EOF'
import os, re
roots = ['README.md', 'DESIGN.md', 'EXPERIMENTS.md', 'ROADMAP.md'] + \
    [os.path.join('docs', f) for f in sorted(os.listdir('docs')) if f.endswith('.md')]
bad = []
for path in roots:
    text = open(path).read()
    for m in re.finditer(r'\]\(([^)\s]+)\)', text):
        target = m.group(1).split('#')[0]
        if not target or target.startswith(('http://', 'https://', 'mailto:')):
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            bad.append(f'{path}: {m.group(1)}')
assert not bad, '\n'.join(bad)
print(f'docs link check: {len(roots)} files ok')
EOF
