#!/usr/bin/env sh
# Tier-1 verification: build, test, lint — one reproducible command.
# Works fully offline (proptest/criterion are path-dep shims under crates/).
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
